"""Execute a :class:`~repro.loadgen.workload.Workload` and report what happened.

Two execution disciplines, the textbook pair for serving systems:

* **open-loop** (:func:`run_open_loop`) — requests are issued at the
  workload's seeded arrival times regardless of completions, the honest way
  to measure latency under a target offered load (closed-loop clients
  self-throttle and hide queueing);
* **closed-loop** (:func:`run_closed_loop`) — a fixed number of workers
  each keep exactly one request outstanding, the right tool for measuring
  sustainable throughput.

Targets abstract *what* is being driven: :class:`HTTPTarget` speaks to a
live ``repro.server`` over real sockets (keep-alive connection pool),
:class:`GatewayTarget` calls a :class:`~repro.gateway.ModelGateway`
in-process — the no-network baseline that isolates HTTP overhead.

Every run produces a :class:`LoadReport` — throughput, p50/p95/p99 latency,
error and shed counts — whose ``save()`` emits the JSON artifact the
``BENCH_*.json`` perf trajectory is built from.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.gateway.gateway import ModelGateway
from repro.loadgen.client import ConnectionPool
from repro.loadgen.workload import Workload
from repro.trace import TRACE_HEADER

#: Outcome kinds recorded per request.
OK, SHED, ERROR = "ok", "shed", "error"


class GatewayTarget:
    """Drive a :class:`ModelGateway` directly (no network, no HTTP parse)."""

    def __init__(self, gateway: ModelGateway, route: str) -> None:
        self.gateway = gateway
        self.route = route

    async def predict(
        self, sequence: tuple[str, ...], key: str
    ) -> tuple[str, str | None]:
        try:
            await asyncio.to_thread(
                self.gateway.predict_proba, self.route, sequence, key=key
            )
            return OK, None
        except Exception:
            return ERROR, None

    async def aclose(self) -> None:  # nothing to tear down; symmetry with HTTP
        return None


class HTTPTarget:
    """Drive a live ``repro.server`` over keep-alive HTTP connections.

    Connection-level failures are retried **once** on a fresh socket before
    counting as an error.  The pool already re-sends transparently when an
    *idle pooled* socket turns out to have been closed by the server; the
    extra retry here also covers a reset on a fresh connection — the
    accept-queue race against a worker draining out of a shared
    ``SO_REUSEPORT`` port during a rolling restart.  Predictions are
    idempotent and read-only, so one re-send is always safe.
    """

    #: Transport-level failures eligible for the single re-send.
    _RETRYABLE = (ConnectionError, asyncio.IncompleteReadError, OSError)

    def __init__(self, host: str, port: int, route: str) -> None:
        self.host = host
        self.port = port
        self.route = route
        self._pool: ConnectionPool | None = None
        #: Connection-level failures transparently retried (observability).
        self.retries = 0

    @property
    def path(self) -> str:
        return f"/routes/{self.route}/predict"

    async def predict(
        self, sequence: tuple[str, ...], key: str
    ) -> tuple[str, str | None]:
        if self._pool is None:
            self._pool = ConnectionPool(self.host, self.port)
        payload = {"sequence": list(sequence), "key": key}
        try:
            response = await self._pool.request("POST", self.path, payload)
        except self._RETRYABLE:
            self.retries += 1
            try:
                response = await self._pool.request("POST", self.path, payload)
            except Exception:
                return ERROR, None
        except Exception:
            return ERROR, None
        # Servers with tracing enabled echo the trace id back; the report
        # surfaces the ids of the slowest requests so an operator can jump
        # from a latency number straight to ``/debug/traces/<id>``.
        trace_id = response.headers.get(TRACE_HEADER.lower())
        if response.status == 200:
            return OK, trace_id
        if response.status == 429:
            return SHED, trace_id
        return ERROR, trace_id

    async def aclose(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None


class MultiHTTPTarget:
    """Drive several servers as one fleet, striping requests by routing key.

    For benchmarking worker fleets without a front balancer: each request's
    key picks a member (stable BLAKE2b hash), so per-key affinity matches
    what a consistent-hash tier would do and every member sees a fair,
    deterministic share of the key space.
    """

    def __init__(self, addresses: Iterable[tuple[str, int]], route: str) -> None:
        self._targets = [HTTPTarget(host, port, route) for host, port in addresses]
        if not self._targets:
            raise ValueError("MultiHTTPTarget needs at least one address")
        self.route = route

    @property
    def retries(self) -> int:
        return sum(target.retries for target in self._targets)

    def _member(self, key: str) -> HTTPTarget:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return self._targets[int.from_bytes(digest, "big") % len(self._targets)]

    async def predict(
        self, sequence: tuple[str, ...], key: str
    ) -> tuple[str, str | None]:
        return await self._member(key).predict(sequence, key)

    async def aclose(self) -> None:
        for target in self._targets:
            await target.aclose()


@dataclass(frozen=True)
class LoadReport:
    """The measured result of one workload run (JSON-serializable)."""

    mode: str  # "open" | "closed"
    seed: int
    n_requests: int
    ok: int
    shed: int
    errors: int
    duration_seconds: float
    throughput_rps: float  # completed-OK requests per wall-clock second
    offered_rate_rps: float | None  # open-loop target rate, if any
    concurrency: int | None  # closed-loop worker count, if any
    latency: dict  # over OK requests: count/mean_ms/max_ms/p50_ms/p95_ms/p99_ms
    #: Trace ids of the slowest completed requests (slowest first), echoed by
    #: traced targets via the ``X-Repro-Trace`` response header — each id is
    #: retrievable from the server's ``/debug/traces/<id>`` plane.
    slow_traces: tuple[dict, ...] = ()

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "seed": self.seed,
            "n_requests": self.n_requests,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
            "throughput_rps": self.throughput_rps,
            "offered_rate_rps": self.offered_rate_rps,
            "concurrency": self.concurrency,
            "latency": dict(self.latency),
            "slow_traces": [dict(entry) for entry in self.slow_traces],
        }

    def save(self, path: str | Path) -> Path:
        """Write the report as pretty, key-sorted JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        return path


def latency_summary(seconds: Iterable[float]) -> dict:
    """p50/p95/p99, mean and max (milliseconds) over a latency sample."""
    samples = np.asarray(list(seconds), dtype=np.float64)
    if samples.size == 0:
        return {
            "count": 0, "mean_ms": 0.0, "max_ms": 0.0,
            "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
        }
    return {
        "count": int(samples.size),
        "mean_ms": float(1000.0 * samples.mean()),
        "max_ms": float(1000.0 * samples.max()),
        "p50_ms": float(1000.0 * np.quantile(samples, 0.50)),
        "p95_ms": float(1000.0 * np.quantile(samples, 0.95)),
        "p99_ms": float(1000.0 * np.quantile(samples, 0.99)),
    }


#: How many of the slowest requests get their trace ids recorded.
SLOW_TRACE_COUNT = 5


def _slowest_traces(
    outcomes: list[tuple[str, float, str | None]], limit: int = SLOW_TRACE_COUNT
) -> tuple[dict, ...]:
    """The *limit* slowest completed requests that carried a trace id."""
    traced = [
        (seconds, kind, trace_id)
        for kind, seconds, trace_id in outcomes
        if trace_id is not None
    ]
    traced.sort(key=lambda item: item[0], reverse=True)
    return tuple(
        {
            "trace_id": trace_id,
            "latency_ms": round(seconds * 1000.0, 3),
            "outcome": kind,
        }
        for seconds, kind, trace_id in traced[:limit]
    )


def _build_report(
    workload: Workload,
    outcomes: list[tuple[str, float, str | None]],
    duration: float,
    *,
    mode: str,
    concurrency: int | None,
) -> LoadReport:
    ok_latencies = [seconds for kind, seconds, _ in outcomes if kind == OK]
    ok = len(ok_latencies)
    shed = sum(1 for kind, _, _ in outcomes if kind == SHED)
    errors = sum(1 for kind, _, _ in outcomes if kind == ERROR)
    return LoadReport(
        mode=mode,
        seed=workload.seed,
        n_requests=len(workload),
        ok=ok,
        shed=shed,
        errors=errors,
        duration_seconds=float(duration),
        throughput_rps=float(ok / duration) if duration > 0 else 0.0,
        offered_rate_rps=workload.rate,
        concurrency=concurrency,
        latency=latency_summary(ok_latencies),
        slow_traces=_slowest_traces(outcomes),
    )


async def _timed_predict(target, request) -> tuple[str, float, str | None]:
    start = time.perf_counter()
    trace_id: str | None = None
    try:
        result = await target.predict(request.sequence, request.key)
        # Built-in targets return ``(kind, trace_id)``; a bare outcome string
        # (custom / legacy targets) is accepted too and simply carries no id.
        if isinstance(result, tuple):
            kind, trace_id = result
        else:
            kind = result
    except Exception:
        kind = ERROR
    return kind, time.perf_counter() - start, trace_id


async def _open_loop(target, workload: Workload) -> LoadReport:
    loop = asyncio.get_running_loop()
    start = loop.time()
    tasks: list[asyncio.Task] = []
    try:
        for request in workload.requests:
            delay = (start + request.arrival) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(_timed_predict(target, request)))
        outcomes = list(await asyncio.gather(*tasks))
        duration = loop.time() - start
    finally:
        await target.aclose()
    return _build_report(workload, outcomes, duration, mode="open", concurrency=None)


async def _closed_loop(target, workload: Workload, concurrency: int) -> LoadReport:
    loop = asyncio.get_running_loop()
    iterator = iter(workload.requests)
    outcomes: list[tuple[str, float, str | None]] = []

    async def worker() -> None:
        for request in iterator:  # shared iterator: each request issued once
            outcomes.append(await _timed_predict(target, request))

    start = loop.time()
    try:
        await asyncio.gather(*(worker() for _ in range(concurrency)))
        duration = loop.time() - start
    finally:
        await target.aclose()
    return _build_report(workload, outcomes, duration, mode="closed", concurrency=concurrency)


def run_open_loop(target, workload: Workload) -> LoadReport:
    """Replay *workload* open-loop (requests fired at their arrival times).

    The workload must have been built with a ``rate`` (an arrival process);
    every scheduled request is issued and awaited — nothing is dropped by
    the generator itself, so ``ok + shed + errors == n_requests`` always
    holds and any loss is attributable to the target.
    """
    if workload.rate is None:
        raise ValueError("open-loop runs need a workload built with rate=...")
    return asyncio.run(_open_loop(target, workload))


def run_closed_loop(target, workload: Workload, *, concurrency: int = 4) -> LoadReport:
    """Replay *workload* closed-loop with *concurrency* one-outstanding workers."""
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    return asyncio.run(_closed_loop(target, workload, concurrency))
