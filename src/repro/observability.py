"""Shared observability primitives for the serving/gateway stack.

Every traffic-carrying component — the deployment gateway's routes and the
:class:`~repro.serving.service.PredictionService` underneath them — records
its counters and latencies through the same two primitives:

* :class:`CounterSet` — a thread-safe bag of named monotonic counters;
* :class:`RollingLatency` — total/mean/max latency accounting plus rolling
  p50/p95/p99 quantiles over a fixed-size ring buffer of recent samples.

:class:`RouteMetrics` composes the two into the per-route unit the gateway
aggregates into its ``health_snapshot()``.

This module lives *below* every traffic layer (it imports only NumPy), so
both `repro.serving` and `repro.gateway` depend on it downward;
:mod:`repro.gateway.observability` re-exports it as the gateway-facing
facade.  :func:`render_metrics_text` turns any nested snapshot dict into the
flat text exposition format served by ``repro.server``'s ``/metrics``.
"""

from __future__ import annotations

import hashlib
import os
import platform
import re
import threading
import time
from collections import Counter
from typing import Mapping

import numpy as np

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

#: Quantiles reported by every latency snapshot.
LATENCY_QUANTILES: tuple[float, ...] = (0.50, 0.95, 0.99)


class CounterSet:
    """A thread-safe set of named monotonic counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Counter = Counter()

    def increment(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counts[name] += by

    def value(self, name: str) -> int:
        with self._lock:
            return self._counts[name]

    def as_dict(self) -> dict[str, int]:
        """All counters as a JSON-safe plain dict, keys sorted.

        Zero-valued names are omitted; values are plain ``int``.  The sorted
        key order is stable across processes and runs, so serialized
        snapshots diff cleanly.
        """
        with self._lock:
            items = sorted(self._counts.items())
        return {name: int(count) for name, count in items if count}

    def snapshot(self) -> dict[str, int]:
        """Alias of :meth:`as_dict` (the historical name)."""
        return self.as_dict()


class RollingLatency:
    """Latency accounting with rolling quantiles over a ring buffer.

    Total/count/max cover the whole lifetime; the p50/p95/p99 quantiles are
    computed over the most recent ``window`` recorded samples, so they track
    current behaviour instead of being dominated by history.

    ``record(seconds, count=n)`` attributes one observed wall-clock duration
    to *n* logical requests (a batch): the duration enters the ring buffer
    once, while ``count`` advances by *n* — mirroring how the prediction
    service has always counted batched latency.
    """

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._lock = threading.Lock()
        self._ring = np.zeros(window, dtype=np.float64)
        self._filled = 0
        self._next = 0
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def record(self, seconds: float, count: int = 1) -> None:
        with self._lock:
            self._ring[self._next] = seconds
            self._next = (self._next + 1) % self.window
            self._filled = min(self._filled + 1, self.window)
            self._count += count
            self._total += seconds
            self._max = max(self._max, seconds)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Rolling quantile (seconds) over the ring buffer; 0.0 when empty."""
        with self._lock:
            if self._filled == 0:
                return 0.0
            samples = self._ring[: self._filled].copy()
        return float(np.quantile(samples, q))

    def snapshot(self) -> dict:
        """Lifetime totals plus rolling quantiles, in milliseconds.

        The payload is JSON-safe (plain ``int``/``float`` values, no NumPy
        scalars) with a stable key order: ``count``, ``total_seconds``,
        ``mean_ms``, ``max_ms``, ``window``, then ``p50_ms``/``p95_ms``/
        ``p99_ms`` in :data:`LATENCY_QUANTILES` order.
        """
        with self._lock:
            filled = self._filled
            samples = self._ring[:filled].copy() if filled else None
            count = self._count
            total = self._total
            maximum = self._max
        payload = {
            "count": int(count),
            "total_seconds": float(total),
            "mean_ms": (1000.0 * total / count) if count else 0.0,
            "max_ms": 1000.0 * maximum,
            "window": int(self.window),
        }
        for q in LATENCY_QUANTILES:
            key = f"p{int(q * 100)}_ms"
            payload[key] = (
                1000.0 * float(np.quantile(samples, q)) if samples is not None else 0.0
            )
        return payload


class RollingDistribution:
    """Unit-free value distribution with rolling quantiles.

    The dimensionless sibling of :class:`RollingLatency` for gauges sampled
    per event — batch sizes, queue depths.  Lifetime ``count``/``total``/
    ``max`` plus p50/p95/p99 over the most recent ``window`` samples.  The
    snapshot's key set (``mean``/``max``/``p50``… — no ``_ms`` suffixes, no
    ``total_seconds``) is disjoint from a latency snapshot's, so the fleet
    merge can route the two shapes to the right aggregator.
    """

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._lock = threading.Lock()
        self._ring = np.zeros(window, dtype=np.float64)
        self._filled = 0
        self._next = 0
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def record(self, value: float) -> None:
        with self._lock:
            self._ring[self._next] = value
            self._next = (self._next + 1) % self.window
            self._filled = min(self._filled + 1, self.window)
            self._count += 1
            self._total += value
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Rolling quantile over the ring buffer; 0.0 when empty."""
        with self._lock:
            if self._filled == 0:
                return 0.0
            samples = self._ring[: self._filled].copy()
        return float(np.quantile(samples, q))

    def snapshot(self) -> dict:
        """Lifetime totals plus rolling quantiles (JSON-safe, stable keys)."""
        with self._lock:
            filled = self._filled
            samples = self._ring[:filled].copy() if filled else None
            count = self._count
            total = self._total
            maximum = self._max
        payload = {
            "count": int(count),
            "total": float(total),
            "mean": (total / count) if count else 0.0,
            "max": float(maximum),
            "window": int(self.window),
        }
        for q in LATENCY_QUANTILES:
            key = f"p{int(q * 100)}"
            payload[key] = (
                float(np.quantile(samples, q)) if samples is not None else 0.0
            )
        return payload


class StageTimer:
    """Named per-stage latency timers over shared :class:`RollingLatency`.

    The prediction service splits each batch's wall clock into pipeline
    stages (``queue_wait`` → ``featurize`` → ``predict``); a gateway route
    could split similarly.  Each stage is its own :class:`RollingLatency`, so
    every stage gets the full lifetime/rolling-quantile treatment, and
    :meth:`snapshot` nests them under their stage names — which
    :func:`render_metrics_text` flattens into ``..._stages_featurize_ms_*``
    style metric lines automatically.

    Alongside the timers, :meth:`record_value` tracks dimensionless
    per-batch gauges (``batch_size``, ``queue_depth``) as
    :class:`RollingDistribution` stages of the same snapshot — one nested
    dict per stage either way, distinguishable by key shape.

    Stages are created lazily on first :meth:`record`; timers for stages that
    never ran are absent from the snapshot (mirroring ``CounterSet``'s
    zeros-omitted convention).
    """

    def __init__(self, window: int = 2048) -> None:
        self.window = window
        self._lock = threading.Lock()
        self._stages: dict[str, RollingLatency] = {}
        self._values: dict[str, RollingDistribution] = {}

    def _stage(self, name: str) -> RollingLatency:
        with self._lock:
            stage = self._stages.get(name)
            if stage is None:
                stage = RollingLatency(window=self.window)
                self._stages[name] = stage
            return stage

    def _value_stage(self, name: str) -> RollingDistribution:
        with self._lock:
            stage = self._values.get(name)
            if stage is None:
                stage = RollingDistribution(window=self.window)
                self._values[name] = stage
            return stage

    def record(self, name: str, seconds: float, count: int = 1) -> None:
        """Attribute one observed *seconds* duration of stage *name* to
        *count* logical requests (same semantics as ``RollingLatency.record``)."""
        self._stage(name).record(seconds, count=count)

    def record_value(self, name: str, value: float) -> None:
        """Record one sample of the dimensionless distribution *name*."""
        self._value_stage(name).record(value)

    def quantile(self, name: str, q: float) -> float:
        """Rolling quantile of one stage; 0.0 for a stage never recorded."""
        with self._lock:
            stage = self._stages.get(name) or self._values.get(name)
        return stage.quantile(q) if stage is not None else 0.0

    def snapshot(self) -> dict:
        """``{stage: snapshot}`` for every recorded stage, sorted.

        Latency stages and value distributions share the namespace (a name
        is only ever one kind); each nests its own snapshot dict.
        """
        with self._lock:
            stages = sorted({**self._stages, **self._values}.items())
        return {name: stage.snapshot() for name, stage in stages}


class RouteMetrics:
    """Counters + latency for one gateway route.

    Counter names used by the gateway:

    * ``requests`` / ``errors`` — primary-path totals;
    * ``variant:<version>`` — requests served by each deployed version;
    * ``shadow_requests`` / ``shadow_agreements`` / ``shadow_disagreements``
      / ``shadow_errors`` — mirrored-traffic accounting;
    * ``shadow_agree:<shadow>`` / ``shadow_disagree:<shadow>`` — agreement
      attributed to each shadow version;
    * ``shadow_pair_agree:<primary>-><shadow>`` (and ``_disagree``) —
      agreement attributed to the exact (primary, shadow) version pair the
      mirrored request resolved, so a hot-swap mid-traffic starts a fresh
      pair instead of polluting the old one;
    * ``shadow_class_agree:<shadow>:<label>`` (and ``_disagree``) —
      per-class agreement, keyed by the **primary's** predicted label, the
      signal the eval gate's canary analyzer uses to catch class-skewed
      regressions an aggregate rate would hide.
    """

    def __init__(self, latency_window: int = 2048) -> None:
        self.counters = CounterSet()
        self.latency = RollingLatency(window=latency_window)

    def record_request(self, version: str, seconds: float, count: int = 1) -> None:
        self.counters.increment("requests", count)
        self.counters.increment(f"variant:{version}", count)
        self.latency.record(seconds, count=count)

    def record_batch(self, variant_counts: Mapping[str, int], seconds: float) -> None:
        """One batched request: per-variant counts, one latency observation."""
        total = sum(variant_counts.values())
        self.counters.increment("requests", total)
        for version, count in variant_counts.items():
            self.counters.increment(f"variant:{version}", count)
        self.latency.record(seconds, count=total)

    def record_error(self, count: int = 1) -> None:
        self.counters.increment("requests", count)
        self.counters.increment("errors", count)

    def record_shadow(
        self,
        version: str,
        agreements: int,
        disagreements: int,
        *,
        primary: str | None = None,
        by_class: "Mapping[str, tuple[int, int]] | None" = None,
    ) -> None:
        """Record one mirrored batch's label agreement with the primary.

        Args:
            version: The shadow version that served the mirror.
            agreements / disagreements: Aggregate label (dis)agreement counts.
            primary: The primary version the mirrored requests resolved;
                when given, agreement is additionally attributed to the
                ``<primary>-><shadow>`` pair (hot-swap-safe attribution).
            by_class: ``label -> (agreements, disagreements)`` keyed by the
                primary's predicted label, for per-class skew detection.
        """
        self.counters.increment("shadow_requests", agreements + disagreements)
        self.counters.increment(f"shadow:{version}", agreements + disagreements)
        if agreements:
            self.counters.increment("shadow_agreements", agreements)
            self.counters.increment(f"shadow_agree:{version}", agreements)
        if disagreements:
            self.counters.increment("shadow_disagreements", disagreements)
            self.counters.increment(f"shadow_disagree:{version}", disagreements)
        if primary is not None:
            pair = f"{primary}->{version}"
            if agreements:
                self.counters.increment(f"shadow_pair_agree:{pair}", agreements)
            if disagreements:
                self.counters.increment(f"shadow_pair_disagree:{pair}", disagreements)
        if by_class:
            for label, (agree, disagree) in by_class.items():
                if agree:
                    self.counters.increment(f"shadow_class_agree:{version}:{label}", agree)
                if disagree:
                    self.counters.increment(
                        f"shadow_class_disagree:{version}:{label}", disagree
                    )

    def record_shadow_error(self, count: int = 1) -> None:
        self.counters.increment("shadow_errors", count)

    @staticmethod
    def _rated(agreements: int, disagreements: int) -> dict:
        total = agreements + disagreements
        return {
            "requests": total,
            "agreements": agreements,
            "disagreements": disagreements,
            "agreement_rate": (agreements / total) if total else None,
        }

    def snapshot(self) -> dict:
        counters = self.counters.as_dict()
        variants = {
            name.split(":", 1)[1]: count
            for name, count in counters.items()
            if name.startswith("variant:")
        }
        # Reassemble the flat shadow counters into (dis)agreement pairs per
        # shadow version, per (primary, shadow) pair and per predicted class.
        by_version: dict[str, list[int]] = {}
        pairs: dict[str, list[int]] = {}
        by_class: dict[str, dict[str, list[int]]] = {}
        for name, count in counters.items():
            if name.startswith(("shadow_agree:", "shadow_disagree:")):
                prefix, version = name.split(":", 1)
                slot = by_version.setdefault(version, [0, 0])
                slot[0 if prefix == "shadow_agree" else 1] += count
            elif name.startswith(("shadow_pair_agree:", "shadow_pair_disagree:")):
                prefix, pair = name.split(":", 1)
                slot = pairs.setdefault(pair, [0, 0])
                slot[0 if prefix == "shadow_pair_agree" else 1] += count
            elif name.startswith(("shadow_class_agree:", "shadow_class_disagree:")):
                prefix, rest = name.split(":", 1)
                version, label = rest.split(":", 1)
                slot = by_class.setdefault(version, {}).setdefault(label, [0, 0])
                slot[0 if prefix == "shadow_class_agree" else 1] += count
        shadow_requests = counters.get("shadow_requests", 0)
        return {
            "requests": counters.get("requests", 0),
            "errors": counters.get("errors", 0),
            "by_variant": variants,
            "shadow": {
                "requests": shadow_requests,
                "agreements": counters.get("shadow_agreements", 0),
                "disagreements": counters.get("shadow_disagreements", 0),
                "errors": counters.get("shadow_errors", 0),
                "agreement_rate": (
                    counters.get("shadow_agreements", 0) / shadow_requests
                    if shadow_requests
                    else None
                ),
                "by_version": {
                    version: self._rated(agree, disagree)
                    for version, (agree, disagree) in sorted(by_version.items())
                },
                "pairs": {
                    pair: self._rated(agree, disagree)
                    for pair, (agree, disagree) in sorted(pairs.items())
                },
                "by_class": {
                    version: {
                        label: self._rated(agree, disagree)
                        for label, (agree, disagree) in sorted(labels.items())
                    }
                    for version, labels in sorted(by_class.items())
                },
            },
            "latency": self.latency.snapshot(),
        }


# ----------------------------------------------------------------------
# fleet-wide merging
# ----------------------------------------------------------------------
#: Keys identifying a dict as a RollingLatency snapshot (see
#: :meth:`RollingLatency.snapshot`); the cluster tier's recursive health
#: merge uses this to route latency dicts to :func:`merge_latency_snapshots`.
LATENCY_SNAPSHOT_KEYS: frozenset[str] = frozenset(
    {"count", "total_seconds", "mean_ms", "max_ms", "window"}
    | {f"p{int(q * 100)}_ms" for q in LATENCY_QUANTILES}
)

#: Keys identifying a dict as a :meth:`RollingDistribution.snapshot` — the
#: unit-free shape (``mean``/``max``/``p50``…, no ``_ms``), routed by the
#: fleet merge to :func:`merge_distribution_snapshots`.
DISTRIBUTION_SNAPSHOT_KEYS: frozenset[str] = frozenset(
    {"count", "total", "mean", "max", "window"}
    | {f"p{int(q * 100)}" for q in LATENCY_QUANTILES}
)


def _as_int(value, default: int = 0) -> int:
    """Coerce a snapshot field to int, tolerating malformed values.

    Fleet snapshots cross process and JSON boundaries; a worker mid-restart
    or a hand-edited payload must degrade to the default, never throw inside
    a merge that other healthy workers depend on.
    """
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


def _as_float(value, default: float = 0.0) -> float:
    """Float twin of :func:`_as_int`; NaN is treated as malformed too."""
    try:
        result = float(value)
    except (TypeError, ValueError):
        return default
    return result if result == result else default


def merge_counter_dicts(dicts: "list[Mapping[str, int]] | tuple[Mapping[str, int], ...]") -> dict[str, int]:
    """Sum per-worker :meth:`CounterSet.as_dict` snapshots into one.

    Counters are monotonic, so the fleet-wide value of each name is exactly
    the sum across workers; zero-valued names stay omitted and keys stay
    sorted (the same invariants one worker's snapshot has).  Non-numeric
    values contribute nothing rather than poisoning the merge.
    """
    merged: Counter = Counter()
    for snapshot in dicts:
        for name, count in snapshot.items():
            merged[name] += _as_int(count)
    return {name: count for name, count in sorted(merged.items()) if count}


def merge_latency_snapshots(snapshots: "list[Mapping] | tuple[Mapping, ...]") -> dict:
    """Merge per-worker :meth:`RollingLatency.snapshot` payloads into one.

    ``count`` and ``total_seconds`` sum exactly, ``max_ms`` is the fleet
    maximum and ``mean_ms`` is recomputed from the exact totals.  The rolling
    quantiles cannot be merged exactly from pre-aggregated summaries (the
    underlying ring samples stay in each worker), so each ``pXX_ms`` is the
    count-weighted average of the workers' quantiles — the standard
    approximation for pre-aggregated percentiles.  It is exact when every
    worker sees the same distribution (the kernel's ``SO_REUSEPORT`` hashing
    approximates this) and always lies within the min/max of the member
    quantiles.  Workers that recorded nothing contribute no weight.
    """
    counts = [_as_int(s.get("count", 0)) for s in snapshots]
    total_count = sum(counts)
    total_seconds = float(sum(_as_float(s.get("total_seconds", 0.0)) for s in snapshots))
    merged = {
        "count": total_count,
        "total_seconds": total_seconds,
        "mean_ms": (1000.0 * total_seconds / total_count) if total_count else 0.0,
        "max_ms": max((_as_float(s.get("max_ms", 0.0)) for s in snapshots), default=0.0),
        "window": max((_as_int(s.get("window", 0)) for s in snapshots), default=0),
    }
    for q in LATENCY_QUANTILES:
        key = f"p{int(q * 100)}_ms"
        weighted = sum(
            count * _as_float(s.get(key, 0.0)) for count, s in zip(counts, snapshots)
        )
        merged[key] = (weighted / total_count) if total_count else 0.0
    return merged


def merge_distribution_snapshots(snapshots: "list[Mapping] | tuple[Mapping, ...]") -> dict:
    """Merge per-worker :meth:`RollingDistribution.snapshot` payloads.

    Same scheme as :func:`merge_latency_snapshots`, minus the unit: exact
    ``count``/``total`` sums, fleet ``max``, recomputed ``mean``, and
    count-weighted quantile approximation for ``p50``/``p95``/``p99``.
    """
    counts = [_as_int(s.get("count", 0)) for s in snapshots]
    total_count = sum(counts)
    total = float(sum(_as_float(s.get("total", 0.0)) for s in snapshots))
    merged = {
        "count": total_count,
        "total": total,
        "mean": (total / total_count) if total_count else 0.0,
        "max": max((_as_float(s.get("max", 0.0)) for s in snapshots), default=0.0),
        "window": max((_as_int(s.get("window", 0)) for s in snapshots), default=0),
    }
    for q in LATENCY_QUANTILES:
        key = f"p{int(q * 100)}"
        weighted = sum(
            count * _as_float(s.get(key, 0.0)) for count, s in zip(counts, snapshots)
        )
        merged[key] = (weighted / total_count) if total_count else 0.0
    return merged


_METRIC_NAME_SANITIZER = re.compile(r"[^0-9A-Za-z_]")

#: Monotonic instant this process first imported the module — the origin for
#: the ``uptime_seconds`` process gauge.  Monotonic, so NTP steps and clock
#: slew cannot make uptime jump or run backwards.
_PROCESS_START_MONOTONIC = time.monotonic()


def process_stats() -> dict:
    """Process-level gauges for ``health_snapshot()`` / ``/healthz``.

    ``uptime_seconds`` counts from module import (monotonic clock),
    ``peak_rss_bytes`` is the high-water resident set (``ru_maxrss``,
    normalized from KiB on Linux vs bytes on macOS), plus ``pid`` and the
    interpreter version.  The fleet merge treats ``pid`` as a list and
    ``uptime_seconds`` as the max — see ``repro.cluster.metrics``.
    """
    peak_rss_bytes = 0
    if resource is not None:
        ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS reports bytes.
        peak_rss_bytes = int(ru_maxrss) if ru_maxrss > 1 << 32 else int(ru_maxrss) * 1024
    return {
        "pid": os.getpid(),
        "uptime_seconds": time.monotonic() - _PROCESS_START_MONOTONIC,
        "peak_rss_bytes": peak_rss_bytes,
        "python_version": platform.python_version(),
    }


def sanitize_metric_name(key: str) -> str:
    """Map an arbitrary snapshot key to a ``[a-zA-Z0-9_]`` metric-name part.

    Illegal characters become ``_``; when that substitution changed anything,
    a 6-hex-digit BLAKE2b suffix of the *original* key is appended so
    distinct keys can never collide after sanitization (``v1@x`` and
    ``v1-x`` both flatten to ``v1_x`` without it).  Keys that are already
    clean pass through byte-identical, keeping historical metric names
    stable.  Deterministic across processes and runs.
    """
    key = str(key)
    sanitized = _METRIC_NAME_SANITIZER.sub("_", key)
    if sanitized == key:
        return sanitized
    suffix = hashlib.blake2b(key.encode("utf-8"), digest_size=3).hexdigest()
    return f"{sanitized}_{suffix}"


def _flatten_metrics(prefix: str, value, lines: list[tuple[str, float]]) -> None:
    if isinstance(value, Mapping):
        for key, nested in value.items():
            part = sanitize_metric_name(key)
            _flatten_metrics(f"{prefix}_{part}" if prefix else part, nested, lines)
    elif isinstance(value, bool):
        lines.append((prefix, int(value)))
    elif isinstance(value, (int, float)) and not isinstance(value, complex):
        lines.append((prefix, value))
    # Non-numeric leaves (strings, None, lists) have no place in a flat
    # numeric exposition; callers export them through JSON endpoints instead.


def render_metrics_text(
    snapshot: Mapping,
    prefix: str = "repro",
    *,
    exemplars: "Mapping[str, str] | None" = None,
) -> str:
    """Serialize a nested snapshot dict as flat ``name value`` text lines.

    The exposition format is Prometheus-style: one metric per line, names
    built by joining nested dict keys with ``_`` (non-identifier characters
    sanitized via :func:`sanitize_metric_name`, which suffixes a short hash
    whenever it had to rewrite a key so distinct keys never collide), numeric
    leaves only (booleans become 0/1; strings, ``None`` and sequences are
    skipped), lines sorted by name so the output is byte-stable for a given
    snapshot.  Used by ``repro.server``'s ``GET /metrics``.

    ``exemplars`` maps flat metric names to trace ids; matching lines get an
    ``# exemplar trace_id=...`` comment appended, linking an aggregate
    latency line to one concrete stored trace (``/debug/traces/<id>``).
    """
    lines: list[tuple[str, float]] = []
    _flatten_metrics(prefix, snapshot, lines)
    rendered = []
    for name, value in sorted(lines):
        if isinstance(value, float) and not value.is_integer():
            line = f"{name} {value:.6f}"
        else:
            line = f"{name} {int(value)}"
        if exemplars:
            trace_id = exemplars.get(name)
            if trace_id:
                line += f" # exemplar trace_id={trace_id}"
        rendered.append(line)
    return "\n".join(rendered) + ("\n" if rendered else "")
