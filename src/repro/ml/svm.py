"""Linear Support Vector Machine (Section V-C of the paper).

The paper uses a linear-kernel SVM trained one-vs-all: "Single classifier per
class was trained with the training set belonging to that class annotated as
positive while the rest of the samples as negative", with the final decision
taken from the real-valued confidence scores.  The implementation minimises
the L2-regularised hinge loss with (mini-batch or full-batch) sub-gradient
descent, the standard primal formulation for linear text classification.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.ml.base import BaseClassifier, check_Xy


class LinearSVMClassifier(BaseClassifier):
    """One-vs-rest linear SVM trained with sub-gradient descent on the hinge loss.

    Args:
        C: Inverse regularisation strength (as in the primal SVM objective
            ``0.5*||w||^2 + C * mean(hinge)`` — larger C fits the data harder).
        max_iter: Number of epochs of sub-gradient descent.
        learning_rate: Initial step size, decayed as ``lr / (1 + t * decay)``.
        decay: Learning-rate decay coefficient.
        tol: Early-stopping threshold on the weight update norm.
        fit_intercept: Learn an (unregularised) bias term.
    """

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 200,
        learning_rate: float = 0.5,
        decay: float = 0.01,
        tol: float = 1e-6,
        fit_intercept: bool = True,
    ) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.C = C
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.decay = decay
        self.tol = tol
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "LinearSVMClassifier":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)
        self.coef_ = np.zeros((n_classes, n_features))
        self.intercept_ = np.zeros(n_classes)

        for class_idx in range(n_classes):
            targets = np.where(encoded == class_idx, 1.0, -1.0)
            weights, bias = self._fit_binary(X, targets, n_samples)
            self.coef_[class_idx] = weights
            self.intercept_[class_idx] = bias
        return self

    def _fit_binary(self, X, targets: np.ndarray, n_samples: int) -> tuple[np.ndarray, float]:
        # Pegasos-style scaling: minimise lam/2 ||w||^2 + mean(hinge) with
        # lam = 1 / (C * n), which matches the usual "C multiplies the total
        # hinge loss" convention while keeping gradient magnitudes O(1).
        lam = 1.0 / (self.C * n_samples)
        weights = np.zeros(X.shape[1])
        bias = 0.0
        for epoch in range(self.max_iter):
            lr = self.learning_rate / (1.0 + epoch * self.decay)
            margins = np.asarray(X @ weights).ravel() + bias
            margins *= targets
            violating = margins < 1.0
            if violating.any():
                selected = targets[violating]
                if sparse.issparse(X):
                    grad_data = -np.asarray(selected @ X[violating]).ravel()
                else:
                    grad_data = -(selected @ X[violating])
                grad_w = lam * weights + grad_data / n_samples
                grad_b = -selected.sum() / n_samples
            else:
                grad_w = lam * weights
                grad_b = 0.0
            update = lr * grad_w
            weights -= update
            if self.fit_intercept:
                bias -= lr * grad_b
            if np.linalg.norm(update) < self.tol:
                break
        return weights, bias

    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Fitted weights plus the prediction-time options (artifact protocol)."""
        self._check_fitted()
        return {
            "fit_intercept": self.fit_intercept,
            "classes": self.classes_,
            "coef": self.coef_,
            "intercept": self.intercept_,
        }

    def set_state(self, state: dict) -> "LinearSVMClassifier":
        """Restore fitted weights from :meth:`get_state`."""
        self.fit_intercept = bool(state["fit_intercept"])
        self.classes_ = np.asarray(state["classes"])
        self.coef_ = np.asarray(state["coef"], dtype=np.float64)
        self.intercept_ = np.asarray(state["intercept"], dtype=np.float64)
        return self

    # ------------------------------------------------------------------
    def decision_function(self, X) -> np.ndarray:
        """Real-valued one-vs-rest confidence scores, shape (n_samples, n_classes)."""
        self._check_fitted()
        scores = np.asarray(X @ self.coef_.T)
        if self.fit_intercept:
            scores = scores + self.intercept_
        return scores

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        """Pseudo-probabilities from a softmax over the margins.

        SVMs are not probabilistic; the softmax over decision scores is only
        used so the common evaluation code can compute a cross-entropy loss
        for Table IV (the paper reports a loss for the SVM as well).
        """
        scores = self.decision_function(X)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
