"""Naive Bayes classifiers (Section V-A of the paper).

The paper's NB baseline selects the label maximising the posterior
``P(C_k | x) ∝ P(C_k) * Π P(x_i | C_k)`` under the naive independence
assumption.  For TF-IDF / count features the standard choice is the
multinomial event model; the Bernoulli variant is included for the
binary-presence representation.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.ml.base import BaseClassifier, check_Xy


class MultinomialNaiveBayes(BaseClassifier):
    """Multinomial Naive Bayes with Laplace/Lidstone smoothing.

    Args:
        alpha: Additive smoothing parameter (alpha=1 is Laplace smoothing).
        fit_prior: Learn class priors from the data; if false, use a uniform
            prior.
    """

    def __init__(self, alpha: float = 1.0, fit_prior: bool = True) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.fit_prior = fit_prior

    def fit(self, X, y) -> "MultinomialNaiveBayes":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        n_classes = len(self.classes_)
        n_features = X.shape[1]

        class_counts = np.bincount(encoded, minlength=n_classes).astype(np.float64)
        feature_counts = np.zeros((n_classes, n_features), dtype=np.float64)
        for class_idx in range(n_classes):
            rows = np.flatnonzero(encoded == class_idx)
            if sparse.issparse(X):
                feature_counts[class_idx] = np.asarray(X[rows].sum(axis=0)).ravel()
            else:
                feature_counts[class_idx] = X[rows].sum(axis=0)

        smoothed = feature_counts + self.alpha
        totals = smoothed.sum(axis=1, keepdims=True)
        self.feature_log_prob_ = np.log(smoothed) - np.log(totals)
        if self.fit_prior:
            self.class_log_prior_ = np.log(class_counts) - np.log(class_counts.sum())
        else:
            self.class_log_prior_ = np.full(n_classes, -np.log(n_classes))
        return self

    def _joint_log_likelihood(self, X) -> np.ndarray:
        self._check_fitted()
        if sparse.issparse(X):
            scores = X @ self.feature_log_prob_.T
            scores = np.asarray(scores)
        else:
            scores = np.asarray(X, dtype=np.float64) @ self.feature_log_prob_.T
        return scores + self.class_log_prior_

    def predict_proba(self, X) -> np.ndarray:
        log_joint = self._joint_log_likelihood(X)
        log_joint -= log_joint.max(axis=1, keepdims=True)
        probabilities = np.exp(log_joint)
        probabilities /= probabilities.sum(axis=1, keepdims=True)
        return probabilities

    def predict_log_proba(self, X) -> np.ndarray:
        """Log of :meth:`predict_proba` (computed stably)."""
        log_joint = self._joint_log_likelihood(X)
        log_norm = _logsumexp(log_joint, axis=1, keepdims=True)
        return log_joint - log_norm

    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Fitted log-probability tables (artifact protocol)."""
        self._check_fitted()
        return {
            "classes": self.classes_,
            "feature_log_prob": self.feature_log_prob_,
            "class_log_prior": self.class_log_prior_,
        }

    def set_state(self, state: dict) -> "MultinomialNaiveBayes":
        """Restore fitted tables from :meth:`get_state`."""
        self.classes_ = np.asarray(state["classes"])
        self.feature_log_prob_ = np.asarray(state["feature_log_prob"], dtype=np.float64)
        self.class_log_prior_ = np.asarray(state["class_log_prior"], dtype=np.float64)
        return self


class BernoulliNaiveBayes(BaseClassifier):
    """Bernoulli Naive Bayes over binarized features.

    Args:
        alpha: Additive smoothing parameter.
        binarize: Threshold above which a feature counts as present; ``None``
            assumes the input is already binary.
    """

    def __init__(self, alpha: float = 1.0, binarize: float | None = 0.0) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.binarize = binarize

    def _binarize(self, X):
        if self.binarize is None:
            return X
        if sparse.issparse(X):
            X = X.copy()
            X.data = (X.data > self.binarize).astype(np.float64)
            return X
        return (np.asarray(X, dtype=np.float64) > self.binarize).astype(np.float64)

    def fit(self, X, y) -> "BernoulliNaiveBayes":
        X, y = check_Xy(X, y)
        X = self._binarize(X)
        encoded = self._encode_labels(y)
        n_classes = len(self.classes_)
        n_features = X.shape[1]

        class_counts = np.bincount(encoded, minlength=n_classes).astype(np.float64)
        feature_counts = np.zeros((n_classes, n_features), dtype=np.float64)
        for class_idx in range(n_classes):
            rows = np.flatnonzero(encoded == class_idx)
            if sparse.issparse(X):
                feature_counts[class_idx] = np.asarray(X[rows].sum(axis=0)).ravel()
            else:
                feature_counts[class_idx] = X[rows].sum(axis=0)

        smoothed = (feature_counts + self.alpha) / (
            class_counts[:, None] + 2.0 * self.alpha
        )
        self.feature_log_prob_ = np.log(smoothed)
        self.neg_feature_log_prob_ = np.log(1.0 - smoothed)
        self.class_log_prior_ = np.log(class_counts) - np.log(class_counts.sum())
        return self

    def _joint_log_likelihood(self, X) -> np.ndarray:
        self._check_fitted()
        X = self._binarize(X)
        delta = (self.feature_log_prob_ - self.neg_feature_log_prob_).T
        if sparse.issparse(X):
            scores = np.asarray(X @ delta)
        else:
            scores = np.asarray(X, dtype=np.float64) @ delta
        scores += self.neg_feature_log_prob_.sum(axis=1)
        return scores + self.class_log_prior_

    def predict_proba(self, X) -> np.ndarray:
        log_joint = self._joint_log_likelihood(X)
        log_joint -= log_joint.max(axis=1, keepdims=True)
        probabilities = np.exp(log_joint)
        probabilities /= probabilities.sum(axis=1, keepdims=True)
        return probabilities

    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Fitted log-probability tables (artifact protocol)."""
        self._check_fitted()
        return {
            "binarize": self.binarize,
            "classes": self.classes_,
            "feature_log_prob": self.feature_log_prob_,
            "neg_feature_log_prob": self.neg_feature_log_prob_,
            "class_log_prior": self.class_log_prior_,
        }

    def set_state(self, state: dict) -> "BernoulliNaiveBayes":
        """Restore fitted tables from :meth:`get_state`."""
        self.binarize = state["binarize"]
        self.classes_ = np.asarray(state["classes"])
        self.feature_log_prob_ = np.asarray(state["feature_log_prob"], dtype=np.float64)
        self.neg_feature_log_prob_ = np.asarray(
            state["neg_feature_log_prob"], dtype=np.float64
        )
        self.class_log_prior_ = np.asarray(state["class_log_prior"], dtype=np.float64)
        return self


def _logsumexp(array: np.ndarray, axis: int, keepdims: bool = False) -> np.ndarray:
    maximum = array.max(axis=axis, keepdims=True)
    result = np.log(np.exp(array - maximum).sum(axis=axis, keepdims=True)) + maximum
    if not keepdims:
        result = np.squeeze(result, axis=axis)
    return result
