"""Shared estimator interface and input validation for the classical models."""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np
from scipy import sparse

ArrayLike = "np.ndarray | sparse.spmatrix | Sequence[Sequence[float]]"


def as_matrix(X) -> np.ndarray | sparse.csr_matrix:
    """Coerce *X* to either a 2-D float ndarray or a CSR sparse matrix."""
    if sparse.issparse(X):
        return X.tocsr()
    array = np.asarray(X, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {array.shape}")
    return array


def ensure_dense(X) -> np.ndarray:
    """Return *X* as a dense 2-D float array (densifying sparse input)."""
    matrix = as_matrix(X)
    if sparse.issparse(matrix):
        return matrix.toarray().astype(np.float64, copy=False)
    return matrix


def check_Xy(X, y) -> tuple[np.ndarray | sparse.csr_matrix, np.ndarray]:
    """Validate a feature matrix / label vector pair.

    Returns the coerced pair; raises ``ValueError`` on shape mismatch, empty
    data or non-finite labels.
    """
    matrix = as_matrix(X)
    labels = np.asarray(y)
    if labels.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {labels.shape}")
    if matrix.shape[0] != labels.shape[0]:
        raise ValueError(
            f"X and y disagree on the number of samples: {matrix.shape[0]} != {labels.shape[0]}"
        )
    if matrix.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    return matrix, labels


class BaseClassifier(abc.ABC):
    """Minimal estimator API shared by every classical model.

    Concrete classifiers implement :meth:`fit` and :meth:`predict_proba` (or
    :meth:`decision_function`); :meth:`predict` and :meth:`score` are provided
    here.  ``classes_`` holds the original label values in sorted order, and
    internal computations use indices into that array.

    Estimators additionally implement the **artifact protocol**:
    :meth:`get_state` returns every fitted attribute needed at prediction time
    as a nested dict of JSON-able values and NumPy arrays, and
    :meth:`set_state` restores it onto a fresh instance — the round-trip must
    reproduce :meth:`predict_proba` bitwise.  Model bundles
    (:mod:`repro.models.artifacts`) persist these states.
    """

    classes_: np.ndarray

    @abc.abstractmethod
    def fit(self, X, y) -> "BaseClassifier":
        """Fit the model to a feature matrix *X* and label vector *y*."""

    @abc.abstractmethod
    def predict_proba(self, X) -> np.ndarray:
        """Class-membership probabilities, shape ``(n_samples, n_classes)``."""

    def get_state(self) -> dict:
        """Fitted state as a nested dict of arrays and JSON-able values."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the artifact protocol"
        )

    def set_state(self, state: dict) -> "BaseClassifier":
        """Restore the fitted state produced by :meth:`get_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the artifact protocol"
        )

    def predict(self, X) -> np.ndarray:
        """Predicted class label for every sample."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def score(self, X, y) -> float:
        """Mean accuracy of :meth:`predict` on the given test data."""
        predictions = self.predict(X)
        return float(np.mean(predictions == np.asarray(y)))

    def _check_fitted(self) -> None:
        if not hasattr(self, "classes_"):
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Store ``classes_`` and return labels encoded as indices into it."""
        self.classes_, encoded = np.unique(y, return_inverse=True)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes to fit a classifier")
        return encoded
