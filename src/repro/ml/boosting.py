"""AdaBoost (SAMME) for multi-class boosting (Section V-D of the paper).

The paper pairs Random Forest with AdaBoost as its tree-ensemble baseline.
This implementation is the multi-class SAMME algorithm over weak CART learners
(depth-limited decision trees by default), which is what
``sklearn.ensemble.AdaBoostClassifier`` runs for discrete boosting.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ml.base import BaseClassifier, check_Xy, ensure_dense
from repro.ml.tree import DecisionTreeClassifier


class AdaBoostClassifier(BaseClassifier):
    """SAMME AdaBoost over decision-tree weak learners.

    Args:
        n_estimators: Maximum number of boosting rounds.
        learning_rate: Shrinkage applied to each estimator's weight.
        base_estimator_factory: Callable returning a fresh weak learner; the
            learner must accept ``sample_weight`` in ``fit``.  Defaults to a
            depth-2 decision tree.
        random_state: Seed passed to default weak learners.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        learning_rate: float = 1.0,
        base_estimator_factory: Callable[[], DecisionTreeClassifier] | None = None,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.base_estimator_factory = base_estimator_factory
        self.random_state = random_state
        self.estimators_: list[DecisionTreeClassifier] = []
        self.estimator_weights_: list[float] = []

    def _make_estimator(self, seed: int) -> DecisionTreeClassifier:
        if self.base_estimator_factory is not None:
            return self.base_estimator_factory()
        return DecisionTreeClassifier(max_depth=2, max_features="sqrt", random_state=seed)

    def fit(self, X, y) -> "AdaBoostClassifier":
        X, y = check_Xy(X, y)
        X = ensure_dense(X)
        labels = np.asarray(y)
        self.classes_ = np.unique(labels)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("need at least two classes to fit a classifier")
        n_samples = X.shape[0]
        rng = np.random.default_rng(self.random_state)

        weights = np.full(n_samples, 1.0 / n_samples)
        self.estimators_ = []
        self.estimator_weights_ = []

        for _ in range(self.n_estimators):
            estimator = self._make_estimator(int(rng.integers(0, 2**31 - 1)))
            estimator.fit(X, labels, sample_weight=weights)
            predictions = estimator.predict(X)
            incorrect = predictions != labels
            error = float(np.average(incorrect, weights=weights))

            if error <= 0.0:
                # Perfect weak learner: give it full confidence and stop.
                self.estimators_.append(estimator)
                self.estimator_weights_.append(1.0)
                break
            if error >= 1.0 - 1.0 / n_classes:
                # Worse than chance under SAMME: discard and stop boosting.
                if not self.estimators_:
                    self.estimators_.append(estimator)
                    self.estimator_weights_.append(1.0)
                break

            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(n_classes - 1.0)
            )
            weights *= np.exp(alpha * incorrect)
            weights /= weights.sum()

            self.estimators_.append(estimator)
            self.estimator_weights_.append(float(alpha))
        return self

    def decision_function(self, X) -> np.ndarray:
        """Weighted vote tally per class."""
        self._check_fitted()
        X = ensure_dense(X)
        scores = np.zeros((X.shape[0], len(self.classes_)))
        for estimator, alpha in zip(self.estimators_, self.estimator_weights_):
            predictions = estimator.predict(X)
            for column, cls in enumerate(self.classes_):
                scores[:, column] += alpha * (predictions == cls)
        return scores

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        totals = scores.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return scores / totals

    def _check_fitted(self) -> None:
        if not self.estimators_:
            raise RuntimeError("AdaBoostClassifier is not fitted; call fit() first")

    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Fitted ensemble (trees + weights) — the artifact protocol."""
        self._check_fitted()
        return {
            "classes": self.classes_,
            "estimator_weights": [float(alpha) for alpha in self.estimator_weights_],
            "estimators": [tree.get_state() for tree in self.estimators_],
        }

    def set_state(self, state: dict) -> "AdaBoostClassifier":
        """Restore a fitted ensemble from :meth:`get_state`."""
        self.classes_ = np.asarray(state["classes"])
        self.estimator_weights_ = [float(alpha) for alpha in state["estimator_weights"]]
        self.estimators_ = [
            DecisionTreeClassifier().set_state(tree_state)
            for tree_state in state["estimators"]
        ]
        return self
