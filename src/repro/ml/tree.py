"""CART decision tree classifier.

Building block of the Random Forest baseline (Section V-D of the paper).  The
implementation is a standard greedy CART with Gini impurity, vectorised over
candidate thresholds per feature, with optional per-node feature subsampling
(used by the forest) and quantile-capped candidate thresholds so that training
on dense TF-IDF slices stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseClassifier, check_Xy, ensure_dense


@dataclass
class _Node:
    """A tree node: either an internal split or a leaf with class counts."""

    feature: int = -1
    threshold: float = 0.0
    left: "int | None" = None
    right: "int | None" = None
    value: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.value is not None


class DecisionTreeClassifier(BaseClassifier):
    """Greedy CART with Gini impurity.

    Args:
        max_depth: Maximum tree depth (``None`` = unbounded).
        min_samples_split: Minimum samples required to attempt a split.
        min_samples_leaf: Minimum samples each child must keep.
        max_features: Number of features examined per split: an int, a float
            fraction, ``"sqrt"``, ``"log2"`` or ``None`` for all features.
        max_thresholds: Cap on candidate thresholds per feature (quantiles);
            keeps the split search fast on continuous TF-IDF values.
        random_state: Seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        max_thresholds: int = 16,
        random_state: int | None = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_thresholds = max_thresholds
        self.random_state = random_state
        self._nodes: list[_Node] = []

    # ------------------------------------------------------------------
    def fit(self, X, y, sample_weight: np.ndarray | None = None) -> "DecisionTreeClassifier":
        X, y = check_Xy(X, y)
        X = ensure_dense(X)
        encoded = self._encode_labels(y)
        if sample_weight is None:
            sample_weight = np.ones(len(encoded), dtype=np.float64)
        else:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
            if sample_weight.shape[0] != len(encoded):
                raise ValueError("sample_weight length mismatch")
        self._rng = np.random.default_rng(self.random_state)
        self._n_classes = len(self.classes_)
        self._nodes = []
        self._build(X, encoded, sample_weight, depth=0)
        return self

    def _resolve_max_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if isinstance(mf, str):
            if mf == "sqrt":
                return max(1, int(np.sqrt(n_features)))
            if mf == "log2":
                return max(1, int(np.log2(n_features)))
            raise ValueError(f"unknown max_features {mf!r}")
        if isinstance(mf, float):
            return max(1, int(mf * n_features))
        return max(1, min(int(mf), n_features))

    def _build(self, X, y, weights, depth: int) -> int:
        node_index = len(self._nodes)
        node = _Node()
        self._nodes.append(node)

        class_weights = np.bincount(y, weights=weights, minlength=self._n_classes)
        total = class_weights.sum()
        impurity = 1.0 - np.sum((class_weights / total) ** 2) if total > 0 else 0.0

        stop = (
            (self.max_depth is not None and depth >= self.max_depth)
            or len(y) < self.min_samples_split
            or impurity <= 1e-12
        )
        if not stop:
            split = self._best_split(X, y, weights, class_weights, total)
        else:
            split = None

        if split is None:
            node.value = class_weights / max(total, 1e-12)
            return node_index

        feature, threshold, left_mask = split
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[left_mask], y[left_mask], weights[left_mask], depth + 1)
        node.right = self._build(X[~left_mask], y[~left_mask], weights[~left_mask], depth + 1)
        return node_index

    def _best_split(self, X, y, weights, class_weights, total):
        n_samples, n_features = X.shape
        k = self._resolve_max_features(n_features)
        if k < n_features:
            candidates = self._rng.choice(n_features, size=k, replace=False)
        else:
            candidates = np.arange(n_features)

        parent_score = np.sum((class_weights / total) ** 2)
        best_gain = 1e-12
        best = None

        for feature in candidates:
            column = X[:, feature]
            thresholds = self._candidate_thresholds(column)
            if thresholds.size == 0:
                continue
            for threshold in thresholds:
                left_mask = column <= threshold
                n_left = int(left_mask.sum())
                if n_left < self.min_samples_leaf or n_samples - n_left < self.min_samples_leaf:
                    continue
                left_weights = np.bincount(
                    y[left_mask], weights=weights[left_mask], minlength=self._n_classes
                )
                right_weights = class_weights - left_weights
                left_total = left_weights.sum()
                right_total = total - left_total
                if left_total <= 0 or right_total <= 0:
                    continue
                left_score = np.sum((left_weights / left_total) ** 2)
                right_score = np.sum((right_weights / right_total) ** 2)
                weighted = (left_total * left_score + right_total * right_score) / total
                gain = weighted - parent_score
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold), left_mask)
        return best

    def _candidate_thresholds(self, column: np.ndarray) -> np.ndarray:
        unique = np.unique(column)
        if unique.size <= 1:
            return np.empty(0)
        midpoints = (unique[:-1] + unique[1:]) / 2.0
        if midpoints.size > self.max_thresholds:
            quantiles = np.linspace(0, 1, self.max_thresholds + 2)[1:-1]
            midpoints = np.unique(np.quantile(column, quantiles))
        return midpoints

    # ------------------------------------------------------------------
    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = ensure_dense(X)
        output = np.empty((X.shape[0], self._n_classes))
        for row in range(X.shape[0]):
            output[row] = self._predict_row(X[row])
        return output

    def _predict_row(self, row: np.ndarray) -> np.ndarray:
        index = 0
        while True:
            node = self._nodes[index]
            if node.is_leaf:
                return node.value
            index = node.left if row[node.feature] <= node.threshold else node.right

    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Fitted tree as flat node arrays (the artifact protocol)."""
        self._check_fitted()
        n_nodes = len(self._nodes)
        values = np.zeros((n_nodes, self._n_classes), dtype=np.float64)
        is_leaf = np.zeros(n_nodes, dtype=bool)
        for index, node in enumerate(self._nodes):
            if node.is_leaf:
                is_leaf[index] = True
                values[index] = node.value
        return {
            "classes": self.classes_,
            "features": np.asarray([node.feature for node in self._nodes], dtype=np.int64),
            "thresholds": np.asarray([node.threshold for node in self._nodes], dtype=np.float64),
            "left": np.asarray(
                [-1 if node.left is None else node.left for node in self._nodes], dtype=np.int64
            ),
            "right": np.asarray(
                [-1 if node.right is None else node.right for node in self._nodes], dtype=np.int64
            ),
            "is_leaf": is_leaf,
            "values": values,
        }

    def set_state(self, state: dict) -> "DecisionTreeClassifier":
        """Rebuild the fitted tree from :meth:`get_state` arrays."""
        self.classes_ = np.asarray(state["classes"])
        self._n_classes = len(self.classes_)
        features = np.asarray(state["features"], dtype=np.int64)
        thresholds = np.asarray(state["thresholds"], dtype=np.float64)
        left = np.asarray(state["left"], dtype=np.int64)
        right = np.asarray(state["right"], dtype=np.int64)
        is_leaf = np.asarray(state["is_leaf"], dtype=bool)
        values = np.asarray(state["values"], dtype=np.float64)
        self._nodes = [
            _Node(value=values[index].copy())
            if is_leaf[index]
            else _Node(
                feature=int(features[index]),
                threshold=float(thresholds[index]),
                left=int(left[index]),
                right=int(right[index]),
            )
            for index in range(len(features))
        ]
        return self

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Depth of the fitted tree."""
        self._check_fitted()

        def _depth(index: int) -> int:
            node = self._nodes[index]
            if node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(0) if self._nodes else 0
