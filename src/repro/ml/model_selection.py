"""Model selection utilities: k-fold cross-validation and grid search.

Not used directly by the headline Table IV experiment (the paper uses a fixed
7:1:2 split), but provided for the hyper-parameter exploration that any
practical reuse of the library needs.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np
from scipy import sparse


def k_fold_indices(
    n_samples: int, n_folds: int = 5, shuffle: bool = True, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``(train_idx, test_idx)`` pairs for k-fold cross-validation."""
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    if n_folds > n_samples:
        raise ValueError("n_folds cannot exceed the number of samples")
    indices = np.arange(n_samples)
    if shuffle:
        rng = np.random.default_rng(seed)
        rng.shuffle(indices)
    folds = np.array_split(indices, n_folds)
    pairs = []
    for i in range(n_folds):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        pairs.append((train_idx, test_idx))
    return pairs


def _index_rows(X, rows: np.ndarray):
    if sparse.issparse(X):
        return X[rows]
    return np.asarray(X)[rows]


def cross_val_score(
    estimator_factory: Callable[[], object],
    X,
    y,
    n_folds: int = 5,
    seed: int = 0,
) -> np.ndarray:
    """Accuracy of a freshly constructed estimator on each fold.

    Args:
        estimator_factory: Zero-argument callable returning an unfitted
            estimator with ``fit``/``score``.
        X, y: Dataset.
        n_folds: Number of folds.
        seed: Shuffle seed.

    Returns:
        Array of per-fold accuracies.
    """
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in k_fold_indices(len(y), n_folds=n_folds, seed=seed):
        estimator = estimator_factory()
        estimator.fit(_index_rows(X, train_idx), y[train_idx])
        scores.append(estimator.score(_index_rows(X, test_idx), y[test_idx]))
    return np.asarray(scores)


def grid_search(
    estimator_factory: Callable[..., object],
    param_grid: Mapping[str, Sequence],
    X,
    y,
    n_folds: int = 3,
    seed: int = 0,
) -> tuple[dict, float, list[tuple[dict, float]]]:
    """Exhaustive grid search by cross-validated accuracy.

    Args:
        estimator_factory: Callable accepting the grid parameters as keyword
            arguments and returning an unfitted estimator.
        param_grid: Mapping from parameter name to candidate values.
        X, y: Dataset.
        n_folds: Folds per configuration.
        seed: Shuffle seed.

    Returns:
        ``(best_params, best_score, all_results)`` where ``all_results`` is a
        list of ``(params, mean_score)`` pairs in evaluation order.
    """
    names = list(param_grid)
    results: list[tuple[dict, float]] = []
    best_params: dict = {}
    best_score = -np.inf
    for values in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        scores = cross_val_score(
            lambda: estimator_factory(**params), X, y, n_folds=n_folds, seed=seed
        )
        mean_score = float(scores.mean())
        results.append((params, mean_score))
        if mean_score > best_score:
            best_score = mean_score
            best_params = params
    return best_params, best_score, results


def iter_param_grid(param_grid: Mapping[str, Sequence]) -> Iterable[dict]:
    """Yield every parameter combination of *param_grid* as a dict."""
    names = list(param_grid)
    for values in itertools.product(*(param_grid[name] for name in names)):
        yield dict(zip(names, values))
