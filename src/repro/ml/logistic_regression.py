"""Logistic Regression (Section V-B of the paper).

The paper trains LR "on a one-vs-rest scheme" for the 26-class problem and
reports it as the best statistical baseline (57.70 % accuracy).  Both the
one-vs-rest formulation and the direct multinomial (softmax) formulation are
implemented; optimisation is full-batch gradient descent with L2
regularisation, which converges well on TF-IDF features.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.ml.base import BaseClassifier, check_Xy


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


def _softmax(z: np.ndarray) -> np.ndarray:
    shifted = z - z.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegressionClassifier(BaseClassifier):
    """L2-regularised logistic regression.

    Args:
        multi_class: ``"ovr"`` (the paper's one-vs-rest scheme) or
            ``"multinomial"`` (softmax).
        C: Inverse regularisation strength (larger = less regularisation).
        max_iter: Gradient-descent iterations.
        learning_rate: Step size.  With TF-IDF's unit-norm rows, 1.0 is a
            stable default for full-batch updates.
        tol: Stop early when the gradient norm falls below this value.
        fit_intercept: Learn a bias term.
    """

    def __init__(
        self,
        multi_class: str = "ovr",
        C: float = 1.0,
        max_iter: int = 300,
        learning_rate: float = 1.0,
        tol: float = 1e-5,
        fit_intercept: bool = True,
    ) -> None:
        if multi_class not in ("ovr", "multinomial"):
            raise ValueError(f"multi_class must be 'ovr' or 'multinomial', got {multi_class!r}")
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.multi_class = multi_class
        self.C = C
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.tol = tol
        self.fit_intercept = fit_intercept

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "LogisticRegressionClassifier":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)

        self.coef_ = np.zeros((n_classes, n_features))
        self.intercept_ = np.zeros(n_classes)

        if self.multi_class == "multinomial":
            self._fit_multinomial(X, encoded, n_samples, n_classes)
        else:
            self._fit_ovr(X, encoded, n_samples, n_classes)
        return self

    def _fit_multinomial(self, X, encoded, n_samples, n_classes) -> None:
        one_hot = np.zeros((n_samples, n_classes))
        one_hot[np.arange(n_samples), encoded] = 1.0
        lam = 1.0 / (self.C * n_samples)
        for _ in range(self.max_iter):
            logits = self._decision(X)
            probabilities = _softmax(logits)
            error = (probabilities - one_hot) / n_samples
            grad_w = (error.T @ X) if not sparse.issparse(X) else np.asarray(error.T @ X)
            grad_w += lam * self.coef_
            grad_b = error.sum(axis=0)
            self.coef_ -= self.learning_rate * grad_w
            if self.fit_intercept:
                self.intercept_ -= self.learning_rate * grad_b
            if np.linalg.norm(grad_w) < self.tol:
                break

    def _fit_ovr(self, X, encoded, n_samples, n_classes) -> None:
        lam = 1.0 / (self.C * n_samples)
        for class_idx in range(n_classes):
            target = (encoded == class_idx).astype(np.float64)
            weights = np.zeros(X.shape[1])
            bias = 0.0
            for _ in range(self.max_iter):
                scores = X @ weights + bias
                scores = np.asarray(scores).ravel()
                probabilities = _sigmoid(scores)
                error = (probabilities - target) / n_samples
                grad_w = np.asarray(error @ X).ravel() + lam * weights
                grad_b = error.sum()
                weights -= self.learning_rate * grad_w
                if self.fit_intercept:
                    bias -= self.learning_rate * grad_b
                if np.linalg.norm(grad_w) < self.tol:
                    break
            self.coef_[class_idx] = weights
            self.intercept_[class_idx] = bias

    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Fitted weights plus the prediction-time options (artifact protocol)."""
        self._check_fitted()
        return {
            "multi_class": self.multi_class,
            "fit_intercept": self.fit_intercept,
            "classes": self.classes_,
            "coef": self.coef_,
            "intercept": self.intercept_,
        }

    def set_state(self, state: dict) -> "LogisticRegressionClassifier":
        """Restore fitted weights from :meth:`get_state`."""
        self.multi_class = str(state["multi_class"])
        self.fit_intercept = bool(state["fit_intercept"])
        self.classes_ = np.asarray(state["classes"])
        self.coef_ = np.asarray(state["coef"], dtype=np.float64)
        self.intercept_ = np.asarray(state["intercept"], dtype=np.float64)
        return self

    # ------------------------------------------------------------------
    def _decision(self, X) -> np.ndarray:
        scores = X @ self.coef_.T
        scores = np.asarray(scores)
        if self.fit_intercept:
            scores = scores + self.intercept_
        return scores

    def decision_function(self, X) -> np.ndarray:
        """Raw class scores before the probability link."""
        self._check_fitted()
        return self._decision(X)

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        scores = self._decision(X)
        if self.multi_class == "multinomial":
            return _softmax(scores)
        # OvR: per-class sigmoid scores normalised across classes.
        probabilities = _sigmoid(scores)
        totals = probabilities.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return probabilities / totals
