"""Classical (statistical) machine-learning models, implemented on NumPy.

These are the TF-IDF baselines of Section V of the paper: Naive Bayes,
Logistic Regression, linear SVM and Random Forest with AdaBoost.  The
implementations follow the standard formulations (and scikit-learn's
hyper-parameter semantics where applicable) so the experiments exercise the
same algorithms the paper ran.
"""

from repro.ml.base import BaseClassifier, check_Xy, ensure_dense
from repro.ml.boosting import AdaBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic_regression import LogisticRegressionClassifier
from repro.ml.model_selection import cross_val_score, grid_search
from repro.ml.naive_bayes import BernoulliNaiveBayes, MultinomialNaiveBayes
from repro.ml.svm import LinearSVMClassifier
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "BaseClassifier",
    "check_Xy",
    "ensure_dense",
    "MultinomialNaiveBayes",
    "BernoulliNaiveBayes",
    "LogisticRegressionClassifier",
    "LinearSVMClassifier",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "AdaBoostClassifier",
    "cross_val_score",
    "grid_search",
]
