"""Random Forest classifier (Section V-D of the paper).

"Random forest (RF) is a bagging decision tree approach" — bootstrap-sampled
CART trees with per-split feature subsampling, predictions averaged over the
ensemble.  The paper combines RF with AdaBoost; see
:mod:`repro.ml.boosting` for the boosting wrapper.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_Xy, ensure_dense
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(BaseClassifier):
    """Bagged ensemble of CART trees with feature subsampling.

    Args:
        n_estimators: Number of trees.
        max_depth: Depth cap passed to every tree.
        min_samples_split / min_samples_leaf: Tree growth controls.
        max_features: Per-split feature subsampling (default "sqrt").
        bootstrap: Sample training rows with replacement for each tree.
        random_state: Seed controlling bootstraps and feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: list[DecisionTreeClassifier] = []

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        X = ensure_dense(X)
        labels = np.asarray(y)
        self.classes_ = np.unique(labels)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes to fit a classifier")
        rng = np.random.default_rng(self.random_state)
        n_samples = X.shape[0]
        self.estimators_ = []
        for i in range(self.n_estimators):
            if self.bootstrap:
                indices = rng.integers(0, n_samples, size=n_samples)
            else:
                indices = np.arange(n_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[indices], labels[indices])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = ensure_dense(X)
        aggregate = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            probabilities = tree.predict_proba(X)
            # Trees may have seen only a subset of classes in their bootstrap.
            for tree_idx, cls in enumerate(tree.classes_):
                column = int(np.searchsorted(self.classes_, cls))
                aggregate[:, column] += probabilities[:, tree_idx]
        aggregate /= len(self.estimators_)
        row_sums = aggregate.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        return aggregate / row_sums

    def _check_fitted(self) -> None:
        if not self.estimators_:
            raise RuntimeError("RandomForestClassifier is not fitted; call fit() first")

    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Fitted forest (every tree's node arrays) — the artifact protocol."""
        self._check_fitted()
        return {
            "classes": self.classes_,
            "estimators": [tree.get_state() for tree in self.estimators_],
        }

    def set_state(self, state: dict) -> "RandomForestClassifier":
        """Restore a fitted forest from :meth:`get_state`."""
        self.classes_ = np.asarray(state["classes"])
        self.estimators_ = [
            DecisionTreeClassifier().set_state(tree_state)
            for tree_state in state["estimators"]
        ]
        return self

    @property
    def feature_importances_(self) -> np.ndarray:
        """Split-frequency based feature importances (normalised)."""
        self._check_fitted()
        n_features = max(
            (node.feature for tree in self.estimators_ for node in tree._nodes if not node.is_leaf),
            default=-1,
        ) + 1
        importances = np.zeros(max(n_features, 1))
        for tree in self.estimators_:
            for node in tree._nodes:
                if not node.is_leaf:
                    importances[node.feature] += 1.0
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances
