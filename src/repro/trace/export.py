"""JSONL trace export and incident replay.

``save_traces_jsonl`` writes one trace dict per line — the stable archival
form for an incident.  ``workload_from_traces`` turns saved traces back into
a seeded loadgen :class:`~repro.loadgen.workload.Workload`: root spans carry
the original request sequence and routing key, so the exact traffic that
produced an incident can be replayed against a fixed build.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence


def save_traces_jsonl(traces: Iterable[dict[str, Any]], path: str | Path) -> int:
    """Write trace dicts as JSON Lines; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for trace in traces:
            handle.write(json.dumps(trace, sort_keys=True) + "\n")
            count += 1
    return count


def load_traces_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Read traces written by :func:`save_traces_jsonl` (blank lines skipped)."""
    traces: list[dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                traces.append(json.loads(line))
    return traces


def _root_span(trace: dict[str, Any]) -> dict[str, Any] | None:
    spans: Sequence[dict[str, Any]] = trace.get("spans", ())
    for span in spans:
        if span.get("parent_id") is None:
            return span
    return spans[0] if spans else None


def workload_from_traces(
    traces: Sequence[dict[str, Any]],
    *,
    seed: int = 0,
    rate: float | None = None,
    spacing_s: float = 0.01,
):
    """Rebuild a loadgen ``Workload`` from exported traces.

    Each trace whose root span recorded a ``sequence`` attribute becomes one
    request, in export order.  Traces carry no wall-clock, so open-loop
    arrival times are synthesized: evenly spaced at ``spacing_s`` (or at
    ``1/rate`` when an explicit replay rate is given).
    """
    # Imported lazily: repro.loadgen imports repro.trace for header capture,
    # so a module-level import here would be circular.
    from repro.loadgen.workload import Workload, WorkloadRequest

    step = (1.0 / rate) if rate else spacing_s
    requests = []
    for trace in traces:
        root = _root_span(trace)
        if root is None:
            continue
        sequence = root.get("attrs", {}).get("sequence")
        if not sequence:
            continue
        key = str(trace.get("key") or "")
        requests.append(
            WorkloadRequest(
                sequence=tuple(str(token) for token in sequence),
                key=key,
                arrival=len(requests) * step,
            )
        )
    return Workload(
        requests=tuple(requests), seed=seed, rate=rate, arrival="replay"
    )
