"""repro.trace — dependency-free request tracing for the serving stack.

A :class:`Trace` carries a deterministic 128-bit id and an ordered list of
:class:`Span` records (name, parent, monotonic start/duration, structured
attributes).  Context propagates in-process through a ``contextvars`` variable
and across the balancer → worker network hop through the ``X-Repro-Trace``
header, so a single id stitches the L7 balancer span to the worker's
server/gateway/service spans.

Design constraints (see docs/architecture.md, "Request tracing"):

* **Deterministic** — trace ids derive from ``(seed, request key, per-key
  counter)`` via BLAKE2b; head sampling hashes the request key.  No
  wall-clock and no ``os.urandom`` anywhere in the id path, so a seeded
  loadgen scenario reproduces the same sampled trace set run after run.
* **Off the critical path** — a disabled tracer returns ``None`` from
  ``begin()``; sampled-out requests still get an id (so the response header
  and exemplars work) but every span helper degrades to a no-op.
* **Tail sampling** — the bounded :class:`TraceStore` always keeps slow and
  error traces regardless of the head-sampling verdict.
"""

from repro.trace.export import (
    load_traces_jsonl,
    save_traces_jsonl,
    workload_from_traces,
)
from repro.trace.store import TraceStore
from repro.trace.tracing import (
    TRACE_HEADER,
    Span,
    Trace,
    Tracer,
    activate,
    call_with_trace,
    current_span_id,
    current_trace,
    format_trace_header,
    parse_trace_header,
)

__all__ = [
    "TRACE_HEADER",
    "Span",
    "Trace",
    "TraceStore",
    "Tracer",
    "activate",
    "call_with_trace",
    "current_span_id",
    "current_trace",
    "format_trace_header",
    "load_traces_jsonl",
    "parse_trace_header",
    "save_traces_jsonl",
    "workload_from_traces",
]
