"""Trace/Span model, deterministic ids, and context propagation.

The module is deliberately dependency-free (stdlib only) and sits *below*
every serving layer: ``repro.server``, ``repro.gateway``, ``repro.serving``
and ``repro.cluster`` all import it, never the other way around.

Id derivation
-------------
``trace_id = blake2b("{seed}|{key}|{n}", digest_size=16)`` where ``n`` is a
per-key monotonic counter.  128 bits, hex-encoded, fully determined by the
tracer seed and the order of requests per key — replaying a seeded loadgen
scenario yields byte-identical trace ids.  The head-sampling verdict hashes
only ``(seed, key)``, so every request of a given key is sampled (or not)
consistently, and changing the sample *rate* never re-shuffles which keys
are chosen first.

Propagation
-----------
In-process context rides a :data:`contextvars.ContextVar` holding
``(trace, parent_span_id)``.  ``asyncio``'s ``run_in_executor`` does **not**
propagate contextvars into pool threads, so the server hands the active
trace across explicitly with :func:`call_with_trace`.  Across the network,
the balancer injects ``X-Repro-Trace: <id>;sampled=<0|1>;parent=<span>`` and
the worker adopts it with :meth:`Tracer.adopt`.
"""

from __future__ import annotations

import contextvars
import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: Request/response header carrying trace context across process hops.
TRACE_HEADER = "X-Repro-Trace"

_KEY_SEPARATOR = "\x1f"

#: Active trace context: ``(trace, parent_span_id)`` or ``None``.
_ACTIVE: contextvars.ContextVar[tuple["Trace", str | None] | None] = (
    contextvars.ContextVar("repro_trace_active", default=None)
)

#: Per-key counter dicts are cleared past this size so a long-lived tracer
#: under an adversarial key stream cannot grow without bound.  The clear is
#: deterministic (purely a function of the request history), preserving the
#: replayability contract.
_MAX_TRACKED_KEYS = 65536


def _bucket(key: str, salt: str) -> float:
    """Deterministic bucket in ``[0, 1)`` — same construction as the
    gateway's ``request_bucket``, duplicated here so ``repro.trace`` stays
    dependency-free below the gateway layer."""
    payload = f"{salt}{_KEY_SEPARATOR}{key}".encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass
class Span:
    """One timed operation inside a trace.

    ``start_ms`` is relative to the trace's own clock origin (monotonic, no
    wall time); ``duration_ms`` is ``None`` while the span is open.
    """

    span_id: str
    name: str
    parent_id: str | None = None
    start_ms: float = 0.0
    duration_ms: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "start_ms": round(self.start_ms, 4),
            "duration_ms": None
            if self.duration_ms is None
            else round(self.duration_ms, 4),
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        return cls(
            span_id=str(payload["span_id"]),
            name=str(payload["name"]),
            parent_id=payload.get("parent_id"),
            start_ms=float(payload.get("start_ms", 0.0)),
            duration_ms=(
                None
                if payload.get("duration_ms") is None
                else float(payload["duration_ms"])
            ),
            attrs=dict(payload.get("attrs", {})),
        )


class Trace:
    """A deterministic 128-bit id plus an ordered list of spans.

    Span append is guarded by a lock — the server root span, the executor
    thread running the gateway call, and the balancer's event loop may all
    contribute spans to the same trace object.
    """

    __slots__ = (
        "trace_id",
        "key",
        "sampled",
        "error",
        "spans",
        "_t0",
        "_lock",
        "_span_seq",
    )

    def __init__(self, trace_id: str, key: str, *, sampled: bool) -> None:
        self.trace_id = trace_id
        self.key = key
        self.sampled = sampled
        self.error = False
        self.spans: list[Span] = []
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._span_seq = 0

    # ------------------------------------------------------------------
    # span lifecycle

    def _now_ms(self) -> float:
        return (time.perf_counter() - self._t0) * 1000.0

    def now_ms(self) -> float:
        """Milliseconds since the trace's clock origin (monotonic).

        Public so instrumentation that only learns durations after the fact
        (e.g. batch-thread stage timings read back by the waiting caller)
        can place reconstructed spans on the trace's own timeline.
        """
        return self._now_ms()

    def start_span(
        self,
        name: str,
        *,
        parent: str | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Open a span; ``parent=None`` falls back to the ambient span."""
        if parent is None:
            parent = current_span_id()
        with self._lock:
            self._span_seq += 1
            span = Span(
                span_id=f"s{self._span_seq}",
                name=name,
                parent_id=parent,
                start_ms=self._now_ms(),
                attrs=dict(attrs or {}),
            )
            self.spans.append(span)
        return span

    def end_span(self, span: Span) -> None:
        if span.duration_ms is None:
            span.duration_ms = self._now_ms() - span.start_ms

    def add_span(
        self,
        name: str,
        *,
        start_ms: float,
        duration_ms: float,
        parent: str | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Record an already-measured interval (e.g. service stage timings
        stamped by the batch thread) as a closed span."""
        with self._lock:
            self._span_seq += 1
            span = Span(
                span_id=f"s{self._span_seq}",
                name=name,
                parent_id=parent,
                start_ms=start_ms,
                duration_ms=duration_ms,
                attrs=dict(attrs or {}),
            )
            self.spans.append(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent: str | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Iterator[Span]:
        """Context manager: open a span, activate it as the ambient parent,
        close it on exit; an escaping exception marks span + trace errored."""
        sp = self.start_span(name, parent=parent, attrs=attrs)
        token = _ACTIVE.set((self, sp.span_id))
        try:
            yield sp
        except BaseException:
            sp.attrs["error"] = True
            self.error = True
            raise
        finally:
            _ACTIVE.reset(token)
            self.end_span(sp)

    # ------------------------------------------------------------------
    # inspection / serialization

    @property
    def root(self) -> Span | None:
        for span in self.spans:
            if span.parent_id is None:
                return span
        return self.spans[0] if self.spans else None

    @property
    def duration_ms(self) -> float:
        """End of the latest closed span (spans all share one clock origin)."""
        latest = 0.0
        with self._lock:
            for span in self.spans:
                if span.duration_ms is not None:
                    latest = max(latest, span.start_ms + span.duration_ms)
        return latest

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            spans = [span.to_dict() for span in self.spans]
        return {
            "trace_id": self.trace_id,
            "key": self.key,
            "sampled": self.sampled,
            "error": self.error,
            "duration_ms": round(self.duration_ms, 4),
            "spans": spans,
        }


class Tracer:
    """Creates traces with deterministic ids and head-sampling verdicts.

    ``sample`` is the head-sampling rate in ``[0, 1]``; ``slow_ms`` is the
    tail-sampling latency threshold used by the :class:`TraceStore` this
    tracer feeds.  A tracer constructed with ``enabled=False`` returns
    ``None`` from :meth:`begin` — the entire instrumentation surface then
    degrades to a single ``is None`` check per request.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        sample: float = 1.0,
        slow_ms: float = 250.0,
        enabled: bool = True,
    ) -> None:
        self.seed = int(seed)
        self.sample = min(1.0, max(0.0, float(sample)))
        self.slow_ms = float(slow_ms)
        self.enabled = bool(enabled)
        self._salt = f"trace:{self.seed}"
        self._key_counts: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def head_sampled(self, key: str) -> bool:
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        return _bucket(key, self._salt) < self.sample

    def trace_id_for(self, key: str) -> str:
        """Deterministic 128-bit id: BLAKE2b over seed, key, per-key count."""
        with self._lock:
            if len(self._key_counts) > _MAX_TRACKED_KEYS:
                self._key_counts.clear()
            count = self._key_counts.get(key, 0)
            self._key_counts[key] = count + 1
        payload = f"{self.seed}{_KEY_SEPARATOR}{key}{_KEY_SEPARATOR}{count}"
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()

    def begin(self, key: str, *, sampled: bool | None = None) -> Trace | None:
        """Start a trace for a request key, or ``None`` when disabled."""
        if not self.enabled:
            return None
        if sampled is None:
            sampled = self.head_sampled(key)
        return Trace(self.trace_id_for(key), key, sampled=sampled)

    def adopt(
        self, trace_id: str, key: str, *, sampled: bool
    ) -> Trace | None:
        """Continue a trace started upstream (balancer → worker hop)."""
        if not self.enabled:
            return None
        return Trace(trace_id, key, sampled=sampled)


# ----------------------------------------------------------------------
# ambient context helpers


def current_trace() -> Trace | None:
    active = _ACTIVE.get()
    return active[0] if active is not None else None


def current_span_id() -> str | None:
    active = _ACTIVE.get()
    return active[1] if active is not None else None


@contextmanager
def activate(trace: Trace | None, parent: str | None = None) -> Iterator[None]:
    """Make ``trace`` the ambient trace for the enclosed block (no-op when
    ``trace`` is ``None``, so call sites never branch)."""
    if trace is None:
        yield
        return
    token = _ACTIVE.set((trace, parent))
    try:
        yield
    finally:
        _ACTIVE.reset(token)


def call_with_trace(
    trace: Trace | None,
    parent: str | None,
    fn: Callable[..., Any],
    *args: Any,
    **kwargs: Any,
) -> Any:
    """Run ``fn`` with ``trace`` active — the explicit hand-off for executor
    threads, where ``run_in_executor`` does not carry contextvars."""
    if trace is None:
        return fn(*args, **kwargs)
    token = _ACTIVE.set((trace, parent))
    try:
        return fn(*args, **kwargs)
    finally:
        _ACTIVE.reset(token)


# ----------------------------------------------------------------------
# header propagation


def format_trace_header(trace: Trace, *, parent: str | None = None) -> str:
    """Render the ``X-Repro-Trace`` value for a downstream hop."""
    value = f"{trace.trace_id};sampled={1 if trace.sampled else 0}"
    if parent:
        value += f";parent={parent}"
    return value


def parse_trace_header(value: str) -> tuple[str, bool, str | None] | None:
    """Parse an ``X-Repro-Trace`` value → ``(trace_id, sampled, parent)``.

    Returns ``None`` for malformed values — a bad header must never take
    down the request it rides on.
    """
    if not value:
        return None
    parts = [part.strip() for part in value.split(";")]
    trace_id = parts[0]
    if not trace_id or not all(c in "0123456789abcdef" for c in trace_id):
        return None
    sampled = False
    parent: str | None = None
    for part in parts[1:]:
        if part.startswith("sampled="):
            sampled = part[len("sampled=") :] == "1"
        elif part.startswith("parent="):
            parent = part[len("parent=") :] or None
    return trace_id, sampled, parent
