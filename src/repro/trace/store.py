"""Bounded in-memory trace retention with head + tail sampling.

The store is offered every finished trace.  It keeps a trace when *any* of
three verdicts fires:

* **head** — the trace's deterministic key-hash sampling verdict
  (``trace.sampled``, decided before the request ran);
* **slow** — end-to-end duration at or above the tail-sampling threshold;
* **error** — the trace was marked errored (HTTP 4xx/5xx, shed, exception).

Slow and error traces are therefore captured at 100% regardless of the head
sample rate.  Retention is a ring buffer: the newest ``capacity`` kept
traces survive, oldest evicted first.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.trace.tracing import Trace


class TraceStore:
    """Ring buffer of kept traces, indexed by trace id.

    Thread-safe; serving threads offer, the debug endpoint reads.
    """

    def __init__(self, capacity: int = 256, *, slow_ms: float = 250.0) -> None:
        if capacity < 1:
            raise ValueError("TraceStore capacity must be >= 1")
        self.capacity = int(capacity)
        self.slow_ms = float(slow_ms)
        self._traces: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._lock = threading.Lock()
        self._offered = 0
        self._kept_head = 0
        self._kept_slow = 0
        self._kept_error = 0
        self._dropped = 0
        #: id of the slowest kept trace — the /metrics latency exemplar.
        self._exemplar_id: str | None = None
        self._exemplar_ms = -1.0

    # ------------------------------------------------------------------

    def offer(self, trace: Trace | None) -> bool:
        """Consider a finished trace for retention; True iff it was kept."""
        if trace is None:
            return False
        duration_ms = trace.duration_ms
        slow = duration_ms >= self.slow_ms
        keep = trace.sampled or slow or trace.error
        with self._lock:
            self._offered += 1
            if not keep:
                self._dropped += 1
                return False
            if trace.sampled:
                self._kept_head += 1
            if slow:
                self._kept_slow += 1
            if trace.error:
                self._kept_error += 1
            payload = trace.to_dict()
            payload["slow"] = slow
            self._traces[trace.trace_id] = payload
            self._traces.move_to_end(trace.trace_id)
            while len(self._traces) > self.capacity:
                evicted_id, _ = self._traces.popitem(last=False)
                if evicted_id == self._exemplar_id:
                    self._exemplar_id = None
                    self._exemplar_ms = -1.0
            if duration_ms > self._exemplar_ms and trace.trace_id in self._traces:
                self._exemplar_id = trace.trace_id
                self._exemplar_ms = duration_ms
        return True

    def put(self, payload: dict[str, Any]) -> None:
        """Insert an externally-built trace dict (fleet merges, replays)."""
        trace_id = str(payload.get("trace_id", ""))
        if not trace_id:
            return
        with self._lock:
            self._traces[trace_id] = payload
            self._traces.move_to_end(trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    # ------------------------------------------------------------------

    def get(self, trace_id: str) -> dict[str, Any] | None:
        with self._lock:
            payload = self._traces.get(trace_id)
            return dict(payload) if payload is not None else None

    def list(self, limit: int = 50) -> list[dict[str, Any]]:
        """Newest-first summaries (id, key, duration, flags, span count)."""
        with self._lock:
            items = list(self._traces.values())
        summaries = []
        for payload in reversed(items[-limit:] if limit else items):
            summaries.append(
                {
                    "trace_id": payload.get("trace_id"),
                    "key": payload.get("key"),
                    "duration_ms": payload.get("duration_ms"),
                    "sampled": payload.get("sampled", False),
                    "slow": payload.get("slow", False),
                    "error": payload.get("error", False),
                    "spans": len(payload.get("spans", ())),
                }
            )
        return summaries

    def dump(self) -> list[dict[str, Any]]:
        """Full kept traces, oldest first (the JSONL export order)."""
        with self._lock:
            return [dict(payload) for payload in self._traces.values()]

    def exemplar(self) -> str | None:
        """Trace id of the slowest currently-kept trace, if any."""
        with self._lock:
            return self._exemplar_id

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "offered": self._offered,
                "kept": len(self._traces),
                "kept_head": self._kept_head,
                "kept_slow": self._kept_slow,
                "kept_error": self._kept_error,
                "dropped": self._dropped,
                "capacity": self.capacity,
                "slow_ms": self.slow_ms,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
