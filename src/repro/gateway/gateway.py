"""The deployment gateway: the single front door for multi-model traffic.

:class:`ModelGateway` composes the pieces of this package into the request
path clients actually call:

1. the :class:`~repro.gateway.registry.DeploymentRegistry` hands out one
   atomic :class:`~repro.gateway.registry.RouteSnapshot` per request —
   active pointer, policy, metrics and deployment table captured under a
   single lock acquisition;
2. the snapshot's :class:`~repro.gateway.policies.TrafficPolicy` turns the
   request key into a :class:`~repro.gateway.policies.RoutingDecision`;
3. the decision resolves against the *same snapshot*, pinning the request
   to a :class:`~repro.gateway.registry.Deployment` — no interleaving of
   swap/retire can redirect or strand it — and the underlying
   :class:`~repro.serving.PredictionService` does the batched, cached
   inference;
4. shadow traffic is handed to a small background executor (never blocking
   the primary response) which records label agreement with the primary;
5. ensemble routes fan the request across members and combine their
   label-space-aligned outputs (:mod:`repro.gateway.ensemble`);
6. every route records requests / errors / per-variant counts / shadow
   agreement and rolling latency quantiles through
   :mod:`repro.gateway.observability`, aggregated by
   :meth:`ModelGateway.health_snapshot`.

Responses are always probability vectors over the **route's** label space
(identical label spaces pass through bit-for-bit).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.gateway.ensemble import align_to_label_space, combine_probabilities
from repro.gateway.policies import (
    Ensemble,
    RoutingDecision,
    TrafficPolicy,
    derive_request_key,
)
from repro.gateway.registry import Deployment, DeploymentRegistry, RouteSnapshot
from repro.models.base import CuisineModel
from repro.observability import process_stats
from repro.serving.bundle import ModelBundle
from repro.serving.service import PredictionService
from repro.trace import activate, current_trace


class ModelGateway:
    """Route requests across versioned deployments with live traffic control.

    Args:
        registry: The deployment registry to route over; a private one (with
            a private :class:`PredictionService`) is created by default.
        shadow_workers: Threads mirroring shadow traffic off the critical
            path.
        owns_service: Whether :meth:`close` tears down the underlying
            :class:`PredictionService`.  Defaults to owning it exactly when
            the gateway created its own registry — an injected registry's
            service may be shared with other components and is left running.
            Pass ``True`` to make the gateway the service's terminal owner
            even over an injected registry (e.g. a ``repro.server`` drain),
            or ``False`` to keep a privately-created service alive past the
            gateway.
        **service_kwargs: Forwarded to the private registry (and through it
            to its service) when *registry* is ``None`` — including the
            registry-level ``mmap_bundles=True`` flag that memory-maps
            bundles deployed by path (one physical copy of the arrays shared
            across every process serving the bundle).
    """

    def __init__(
        self,
        registry: DeploymentRegistry | None = None,
        *,
        shadow_workers: int = 2,
        owns_service: bool | None = None,
        **service_kwargs,
    ) -> None:
        if registry is not None and service_kwargs:
            raise ValueError("pass either a registry or service kwargs, not both")
        if shadow_workers < 1:
            raise ValueError(f"shadow_workers must be >= 1, got {shadow_workers}")
        #: Whether close() tears down the service; defaults to "created it".
        self._owns_service = owns_service if owns_service is not None else registry is None
        self.registry = registry if registry is not None else DeploymentRegistry(**service_kwargs)
        self._shadow_pool = ThreadPoolExecutor(
            max_workers=shadow_workers, thread_name_prefix="gateway-shadow"
        )
        self._shadow_lock = threading.Lock()
        self._shadow_futures: set = set()
        self._closed = False

    @property
    def service(self) -> PredictionService:
        return self.registry.service

    # ------------------------------------------------------------------
    # control plane (thin delegation to the registry)
    # ------------------------------------------------------------------
    def deploy(
        self,
        route: str,
        version: str,
        model: CuisineModel | ModelBundle | str | Path,
        **kwargs,
    ) -> Deployment:
        return self.registry.deploy(route, version, model, **kwargs)

    def deploy_export_dir(
        self, export_dir: str | Path, version: str, routes: Sequence[str] | None = None, **kwargs
    ) -> dict[str, Deployment]:
        return self.registry.deploy_export_dir(export_dir, version, routes, **kwargs)

    def swap(self, route: str, version: str) -> Deployment:
        return self.registry.swap(route, version)

    def rollback(self, route: str) -> Deployment:
        return self.registry.rollback(route)

    def retire(self, route: str, version: str) -> None:
        self.registry.retire(route, version)

    def set_policy(self, route: str, policy: TrafficPolicy) -> None:
        self.registry.set_policy(route, policy)

    def clear_policy(self, route: str) -> None:
        self.registry.clear_policy(route)

    def record_verdict(self, route: str, verdict) -> None:
        """Store an eval-gate verdict (a ``repro.eval`` ``Verdict`` or dict).

        The stored form surfaces in :meth:`health_snapshot` (and so in
        ``stats()`` / ``/metrics``) as each route's compact ``eval`` summary.
        """
        payload = verdict.as_dict() if hasattr(verdict, "as_dict") else verdict
        self.registry.set_verdict(route, payload)

    def verdict(self, route: str) -> dict | None:
        return self.registry.verdict(route)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    # Shared with the serving layer so the two can never diverge; validating
    # here keeps routing (key derivation, grouping) over canonical tuples.
    _validated = staticmethod(PredictionService._validated)

    def predict_proba(
        self,
        route: str,
        sequence: Iterable[str],
        *,
        key: str | None = None,
        version: str | None = None,
    ) -> np.ndarray:
        """Probability vector over the route's label space for one request.

        Args:
            route: Route name.
            sequence: Raw recipe item sequence.
            key: Request key driving split/canary assignment; defaults to a
                content-derived key (identical sequences → identical
                variants, across processes).
            version: Bypass the policy and pin a specific deployed version
                (debugging / offline comparison).
        """
        start = time.perf_counter()
        validated = self._validated(sequence)
        snapshot = self.registry.route_snapshot(route)
        metrics = snapshot.metrics
        if version is not None:
            decision = RoutingDecision(primary=version)
        else:
            request_key = key if key is not None else derive_request_key(validated)
            decision = snapshot.policy.decide(request_key, snapshot.view)
        trace = current_trace()
        route_span = None
        if trace is not None:
            # The routing decision rides on the span: which policy fired,
            # whether the caller pinned a version, and (below) the variant
            # the request actually resolved to.
            attrs = {
                "route": route,
                "policy": snapshot.policy.describe().get("kind", "active"),
                "shadows": len(decision.shadows),
                "ensemble": bool(decision.ensemble),
            }
            if version is not None:
                attrs["pinned"] = version
            route_span = trace.start_span("gateway.route", attrs=attrs)
        try:
            with activate(trace, route_span.span_id if route_span else None):
                if decision.ensemble:
                    matrix, variant = self._predict_ensemble(
                        snapshot, decision.ensemble, [validated]
                    )
                    result = matrix[0]
                else:
                    deployment = snapshot.deployment(decision.primary)
                    variant = deployment.version
                    row = self.service.predict_proba(deployment.service_name, validated)
                    result = self._aligned(
                        row[np.newaxis, :], deployment, snapshot.label_space
                    )[0]
            if route_span is not None:
                route_span.attrs["variant"] = variant
        except BaseException:
            if trace is not None:
                trace.error = True
                route_span.attrs["error"] = True
            metrics.record_error()
            raise
        finally:
            if trace is not None:
                trace.end_span(route_span)
        metrics.record_request(variant, time.perf_counter() - start)
        if decision.shadows:
            self._mirror(
                snapshot, decision.shadows, [validated], result[np.newaxis, :], variant
            )
        return result

    def predict(
        self,
        route: str,
        sequence: Iterable[str],
        *,
        key: str | None = None,
        version: str | None = None,
    ) -> str:
        """Predicted cuisine name (in the route's label space)."""
        probabilities = self.predict_proba(route, sequence, key=key, version=version)
        route_space = self.registry.label_space(route)
        return route_space[int(np.argmax(probabilities))]

    def predict_proba_batch(
        self,
        route: str,
        sequences: Sequence[Iterable[str]],
        *,
        keys: Sequence[str] | None = None,
        version: str | None = None,
    ) -> np.ndarray:
        """Probability matrix for a batch, each request routed by its own key.

        Requests landing on the same variant share one model pass; shadow
        mirrors are likewise batched per shadow version.
        """
        start = time.perf_counter()
        validated = [self._validated(sequence) for sequence in sequences]
        snapshot = self.registry.route_snapshot(route)
        metrics = snapshot.metrics
        if not validated:
            return np.zeros((0, len(snapshot.label_space)))
        if keys is not None and len(keys) != len(validated):
            raise ValueError(
                f"got {len(keys)} keys for {len(validated)} sequences"
            )

        groups: dict[tuple, list[int]] = {}
        # Mirrors are grouped by the (shadow, primary) pair — not the shadow
        # alone — so agreement counters attribute to the exact version pair
        # each mirrored request resolved, even mid-hot-swap.
        shadow_groups: dict[tuple[str, str], list[int]] = {}
        for index, item in enumerate(validated):
            if version is not None:
                decision = RoutingDecision(primary=version)
            else:
                request_key = keys[index] if keys is not None else derive_request_key(item)
                decision = snapshot.policy.decide(request_key, snapshot.view)
            groups.setdefault((decision.primary, decision.ensemble), []).append(index)
            primary_variant = (
                decision.primary if decision.primary else "+".join(decision.ensemble)
            )
            for shadow in decision.shadows:
                shadow_groups.setdefault((shadow, primary_variant), []).append(index)

        results = np.zeros((len(validated), len(snapshot.label_space)))
        variant_counts: dict[str, int] = {}
        trace = current_trace()
        route_span = None
        if trace is not None:
            attrs = {
                "route": route,
                "policy": snapshot.policy.describe().get("kind", "active"),
                "batch": len(validated),
            }
            if version is not None:
                attrs["pinned"] = version
            route_span = trace.start_span("gateway.route", attrs=attrs)
        try:
            with activate(trace, route_span.span_id if route_span else None):
                for (primary, ensemble), indices in groups.items():
                    group_sequences = [validated[i] for i in indices]
                    if ensemble:
                        matrix, variant = self._predict_ensemble(
                            snapshot, ensemble, group_sequences
                        )
                    else:
                        deployment = snapshot.deployment(primary)
                        variant = deployment.version
                        matrix = self.service.predict_proba_batch(
                            deployment.service_name, group_sequences
                        )
                        matrix = self._aligned(matrix, deployment, snapshot.label_space)
                    results[indices] = matrix
                    variant_counts[variant] = variant_counts.get(variant, 0) + len(indices)
            if route_span is not None:
                route_span.attrs["variants"] = dict(variant_counts)
        except BaseException:
            if trace is not None:
                trace.error = True
                route_span.attrs["error"] = True
            metrics.record_error(len(validated))
            raise
        finally:
            if trace is not None:
                trace.end_span(route_span)
        metrics.record_batch(variant_counts, time.perf_counter() - start)
        for (shadow, primary_variant), indices in shadow_groups.items():
            self._mirror(
                snapshot,
                (shadow,),
                [validated[i] for i in indices],
                results[indices],
                primary_variant,
            )
        return results

    def predict_batch(
        self,
        route: str,
        sequences: Sequence[Iterable[str]],
        *,
        keys: Sequence[str] | None = None,
        version: str | None = None,
    ) -> list[str]:
        """Predicted cuisine names for a batch of raw sequences."""
        probabilities = self.predict_proba_batch(route, sequences, keys=keys, version=version)
        route_space = self.registry.label_space(route)
        return [route_space[i] for i in probabilities.argmax(axis=1)]

    # ------------------------------------------------------------------
    # ensemble + alignment
    # ------------------------------------------------------------------
    @staticmethod
    def _aligned(
        matrix: np.ndarray, deployment: Deployment, route_space: tuple[str, ...]
    ) -> np.ndarray:
        return align_to_label_space(matrix, deployment.label_space, route_space)

    def _predict_ensemble(
        self,
        snapshot: RouteSnapshot,
        members: tuple[str, ...],
        sequences: Sequence[tuple[str, ...]],
    ) -> tuple[np.ndarray, str]:
        """Fan *sequences* across *members* and combine; returns (matrix, variant)."""
        method, weights = "mean", None
        if isinstance(snapshot.policy, Ensemble):
            method, weights = snapshot.policy.method, snapshot.policy.member_weights()
        aligned = []
        for member in members:
            deployment = snapshot.deployment(member)
            matrix = self.service.predict_proba_batch(deployment.service_name, sequences)
            aligned.append(self._aligned(matrix, deployment, snapshot.label_space))
        combined = combine_probabilities(aligned, method=method, weights=weights)
        return combined, "+".join(members)

    # ------------------------------------------------------------------
    # shadow traffic
    # ------------------------------------------------------------------
    def _mirror(
        self,
        snapshot: RouteSnapshot,
        shadows: tuple[str, ...],
        sequences: Sequence[tuple[str, ...]],
        primary_probabilities: np.ndarray,
        primary_version: str,
    ) -> None:
        """Queue shadow predictions; the caller's response is already final."""
        primary_labels = primary_probabilities.argmax(axis=1).copy()
        for shadow in shadows:
            if self._closed:
                break
            try:
                future = self._shadow_pool.submit(
                    self._run_shadow,
                    snapshot,
                    shadow,
                    list(sequences),
                    primary_labels,
                    primary_version,
                )
            except RuntimeError:
                # close() shut the executor down between the flag check and
                # the submit; mirrors are best-effort — the caller already
                # has its (successful) primary response.
                break
            with self._shadow_lock:
                self._shadow_futures.add(future)
            future.add_done_callback(self._discard_shadow_future)

    def _discard_shadow_future(self, future) -> None:
        with self._shadow_lock:
            self._shadow_futures.discard(future)

    def _run_shadow(
        self,
        snapshot: RouteSnapshot,
        shadow: str,
        sequences: list[tuple[str, ...]],
        primary_labels: np.ndarray,
        primary_version: str,
    ) -> None:
        metrics = snapshot.metrics
        try:
            # Resolved from the request's snapshot: the mirror is pinned to
            # the deployment table its primary saw, like any other request.
            deployment = snapshot.deployment(shadow)
            matrix = self.service.predict_proba_batch(deployment.service_name, sequences)
            shadow_labels = self._aligned(
                matrix, deployment, snapshot.label_space
            ).argmax(axis=1)
            matched = shadow_labels == primary_labels
            agreements = int(np.sum(matched))
            # Per-class attribution keyed by the *primary's* predicted label:
            # a regression confined to one cuisine shows up as a skewed
            # disagreement rate on that class even when the aggregate looks
            # healthy.
            by_class: dict[str, tuple[int, int]] = {}
            for index in np.unique(primary_labels):
                mask = primary_labels == index
                agree = int(np.sum(matched[mask]))
                by_class[snapshot.label_space[int(index)]] = (
                    agree,
                    int(np.sum(mask)) - agree,
                )
            metrics.record_shadow(
                shadow,
                agreements,
                len(sequences) - agreements,
                primary=primary_version,
                by_class=by_class,
            )
        except BaseException:
            metrics.record_shadow_error(len(sequences))

    def flush_shadows(self, timeout: float | None = 10.0) -> None:
        """Block until all queued shadow mirrors have completed."""
        with self._shadow_lock:
            pending = list(self._shadow_futures)
        if pending:
            wait(pending, timeout=timeout)

    # ------------------------------------------------------------------
    # observability / lifecycle
    # ------------------------------------------------------------------
    def health_snapshot(self) -> dict:
        """Aggregate health of every route plus the underlying service.

        ``status`` is ``"ok"`` with no recorded errors, ``"degraded"``
        otherwise; each route reports its deployment topology, policy,
        counters, shadow agreement and rolling latency quantiles.
        """
        described = self.registry.describe()
        routes = {}
        errors = 0
        for name, description in described.items():
            snapshot = self.registry.metrics(name).snapshot()
            errors += snapshot["errors"] + snapshot["shadow"]["errors"]
            routes[name] = {**description, **snapshot}
        return {
            "status": "ok" if errors == 0 else "degraded",
            "routes": routes,
            "service": self.service.stats(),
            "process": process_stats(),
        }

    def close(self) -> None:
        """Stop shadow mirroring; tear down the service only if owned.

        By default a gateway built over an injected registry leaves that
        registry's prediction service running — other components may share
        it — while the service of a privately-created registry is closed
        terminally.  The constructor's ``owns_service`` flag overrides either
        default.
        """
        self._closed = True
        self.flush_shadows()
        self._shadow_pool.shutdown(wait=True)
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "ModelGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
