"""Versioned multi-model deployment gateway over the serving layer.

The gateway is the subsystem between "a bundle on disk" and live traffic:

* :mod:`repro.gateway.registry` — :class:`DeploymentRegistry`: versioned
  deployments per named route, atomic hot-swap / rollback with in-flight
  requests pinned to the version they resolved;
* :mod:`repro.gateway.policies` — deterministic traffic policies (hash-based
  A/B split, canary-by-fraction, shadow mirroring, ensembles), all keyed by
  BLAKE2b buckets so routing is identical across processes and runs;
* :mod:`repro.gateway.ensemble` — label-space alignment and bitwise-
  reproducible probability combination (mean / weighted / majority);
* :mod:`repro.gateway.observability` — facade over the shared
  :mod:`repro.observability` counter / rolling-latency primitives used by
  routes and by the prediction service itself;
* :mod:`repro.gateway.gateway` — :class:`ModelGateway`, the front door tying
  the above into ``predict`` / ``predict_proba`` / batch calls plus
  ``health_snapshot()``.
"""

from repro.gateway.ensemble import align_to_label_space, combine_probabilities
from repro.gateway.gateway import ModelGateway
from repro.gateway.observability import CounterSet, RollingLatency, RouteMetrics
from repro.gateway.policies import (
    ABSplit,
    ActiveVersion,
    Canary,
    Ensemble,
    RouteView,
    RoutingDecision,
    Shadow,
    TrafficPolicy,
    derive_request_key,
    request_bucket,
)
from repro.gateway.registry import (
    Deployment,
    DeploymentRegistry,
    RouteSnapshot,
    service_model_name,
)

__all__ = [
    "ABSplit",
    "ActiveVersion",
    "Canary",
    "CounterSet",
    "Deployment",
    "DeploymentRegistry",
    "Ensemble",
    "ModelGateway",
    "RollingLatency",
    "RouteMetrics",
    "RouteSnapshot",
    "RouteView",
    "RoutingDecision",
    "Shadow",
    "TrafficPolicy",
    "align_to_label_space",
    "combine_probabilities",
    "derive_request_key",
    "request_bucket",
    "service_model_name",
]
