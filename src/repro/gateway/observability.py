"""Gateway-facing facade over the shared observability primitives.

The implementation lives in :mod:`repro.observability` — a neutral module
below every traffic layer — so that `repro.serving` can record its counters
and latencies through the **same primitives** as the gateway's routes
without importing upward into this package.  See that module for
:class:`CounterSet`, :class:`RollingLatency` and :class:`RouteMetrics`.
"""

from repro.observability import (
    LATENCY_QUANTILES,
    CounterSet,
    RollingLatency,
    RouteMetrics,
    StageTimer,
    render_metrics_text,
)

__all__ = [
    "LATENCY_QUANTILES",
    "CounterSet",
    "RollingLatency",
    "RouteMetrics",
    "StageTimer",
    "render_metrics_text",
]
