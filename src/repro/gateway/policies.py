"""Traffic policies: how a gateway route maps a request onto versions.

A policy is a small, immutable routing rule.  Given a **request key** (an
opaque string — user id, session id, or a content hash derived from the
request itself) and a :class:`RouteView` of the route's deployed versions, it
returns a :class:`RoutingDecision` naming the version that serves the
response, any versions the request is mirrored to off the critical path, and
(for ensembles) the member versions whose outputs are combined.

Determinism is the load-bearing property: bucketing uses BLAKE2b over the
key bytes — not Python's per-process-salted ``hash()`` — so the same key maps
to the same variant in every process, on every run, forever.  Changing a
policy's ``salt`` reshuffles the assignment wholesale (the standard trick for
running independent experiments over the same user population).
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

#: Separator for hashing structured keys; never appears in recipe tokens.
_KEY_SEPARATOR = "\x1f"


def derive_request_key(sequence: Iterable[str]) -> str:
    """A stable request key derived from the request content itself.

    Used when the caller supplies no explicit key: identical sequences get
    identical keys (and therefore identical variant assignments) across
    processes and runs.
    """
    joined = _KEY_SEPARATOR.join(str(item) for item in sequence)
    return hashlib.blake2b(joined.encode("utf-8"), digest_size=16).hexdigest()


def request_bucket(key: str, salt: str = "") -> float:
    """Map a request key to a deterministic bucket in ``[0, 1)``.

    BLAKE2b over ``salt + separator + key``; the top 8 digest bytes are read
    as an unsigned integer and scaled.  Uniform over keys, stable across
    processes, and independent between salts.
    """
    payload = f"{salt}{_KEY_SEPARATOR}{key}".encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class RouteView:
    """The immutable facts a policy may consult about a route."""

    name: str
    active: str
    versions: tuple[str, ...]


@dataclass(frozen=True)
class RoutingDecision:
    """Where one request goes.

    Attributes:
        primary: Version that serves the response (``None`` only when
            *ensemble* is set).
        shadows: Versions the request is mirrored to, off the critical path.
        ensemble: Member versions fanned out and combined into the response.
    """

    primary: str | None = None
    shadows: tuple[str, ...] = ()
    ensemble: tuple[str, ...] = ()


class TrafficPolicy(abc.ABC):
    """Deterministic routing rule for one gateway route."""

    kind: str = "base"

    @abc.abstractmethod
    def decide(self, key: str, view: RouteView) -> RoutingDecision:
        """The routing decision for a request key on *view*."""

    def versions_referenced(self) -> tuple[str, ...]:
        """Versions this policy names explicitly (must stay deployed)."""
        return ()

    def describe(self) -> dict:
        """JSON-able policy description for health snapshots."""
        return {"kind": self.kind}


@dataclass(frozen=True)
class ActiveVersion(TrafficPolicy):
    """Route everything to the registry's active version (the default).

    Hot-swap and rollback move the active pointer, so this policy follows
    them with no reconfiguration.
    """

    kind = "active"

    def decide(self, key: str, view: RouteView) -> RoutingDecision:
        return RoutingDecision(primary=view.active)


@dataclass(frozen=True)
class ABSplit(TrafficPolicy):
    """Deterministic hash split across weighted variants.

    Variants partition ``[0, 1)`` into contiguous intervals proportional to
    their weights, in sorted-version order; a request lands in the interval
    containing its bucket.  The same key therefore always hits the same
    variant, in every process.

    Args:
        variants: ``version -> weight`` (weights are normalised; must be
            positive).
        salt: Experiment salt — distinct salts assign independently.
    """

    variants: Mapping[str, float]
    salt: str = ""
    kind = "ab_split"

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError("ABSplit needs at least one variant")
        bad = {v: w for v, w in self.variants.items() if not w > 0}
        if bad:
            raise ValueError(f"variant weights must be positive, got {bad}")
        # Freeze into a plain dict and precompute the cumulative interval
        # edges once — _pick on the request hot path is a pure compare loop.
        object.__setattr__(self, "variants", dict(self.variants))
        names = sorted(self.variants)
        total = sum(self.variants[name] for name in names)
        edge = 0.0
        edges = []
        for name in names:
            edge += self.variants[name] / total
            edges.append((name, edge))
        object.__setattr__(self, "_edges", tuple(edges))

    def versions_referenced(self) -> tuple[str, ...]:
        return tuple(sorted(self.variants))

    def _pick(self, key: str) -> str:
        bucket = request_bucket(key, self.salt)
        for name, edge in self._edges:
            if bucket < edge:
                return name
        return self._edges[-1][0]  # float round-off on the last edge

    def decide(self, key: str, view: RouteView) -> RoutingDecision:
        return RoutingDecision(primary=self._pick(key))

    def describe(self) -> dict:
        return {"kind": self.kind, "variants": dict(self.variants), "salt": self.salt}


@dataclass(frozen=True)
class Canary(TrafficPolicy):
    """Send a deterministic fraction of traffic to a candidate version.

    Args:
        candidate: Version receiving the canary fraction.
        fraction: Share of keys routed to the candidate, in ``[0, 1]``.
        stable: Version serving the rest; defaults to the route's active
            version (so promoting the candidate is just ``swap`` +
            dropping the policy).
        salt: Bucketing salt.
    """

    candidate: str
    fraction: float
    stable: str | None = None
    salt: str = ""
    kind = "canary"

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")

    def versions_referenced(self) -> tuple[str, ...]:
        referenced = [self.candidate]
        if self.stable is not None:
            referenced.append(self.stable)
        return tuple(referenced)

    def decide(self, key: str, view: RouteView) -> RoutingDecision:
        stable = self.stable if self.stable is not None else view.active
        if request_bucket(key, self.salt) < self.fraction:
            return RoutingDecision(primary=self.candidate)
        return RoutingDecision(primary=stable)

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "candidate": self.candidate,
            "fraction": self.fraction,
            "stable": self.stable,
            "salt": self.salt,
        }


@dataclass(frozen=True)
class Shadow(TrafficPolicy):
    """Serve from the primary, mirror every request to a candidate.

    The mirror runs off the critical path (the gateway hands it to a
    background executor) and the gateway records per-route agreement /
    disagreement between the candidate's predicted label and the primary's —
    the safest way to qualify a new version against live traffic.

    Args:
        candidate: Version receiving the mirrored traffic.
        primary: Version serving responses; defaults to the active version.
    """

    candidate: str
    primary: str | None = None
    kind = "shadow"

    def versions_referenced(self) -> tuple[str, ...]:
        referenced = [self.candidate]
        if self.primary is not None:
            referenced.append(self.primary)
        return tuple(referenced)

    def decide(self, key: str, view: RouteView) -> RoutingDecision:
        primary = self.primary if self.primary is not None else view.active
        return RoutingDecision(primary=primary, shadows=(self.candidate,))

    def describe(self) -> dict:
        return {"kind": self.kind, "candidate": self.candidate, "primary": self.primary}


@dataclass(frozen=True)
class Ensemble(TrafficPolicy):
    """Fan each request across member versions and combine their outputs.

    Members are evaluated in sorted-version order and combined by
    :func:`repro.gateway.ensemble.combine_probabilities` with the configured
    method/weights — see that module for the exact (bitwise-reproducible)
    arithmetic.

    Args:
        members: Versions whose outputs are combined.
        method: ``"mean"`` | ``"weighted"`` | ``"majority"``.
        weights: ``version -> weight`` (``"weighted"`` only).
    """

    members: Sequence[str]
    method: str = "mean"
    weights: Mapping[str, float] | None = None
    kind = "ensemble"

    def __post_init__(self) -> None:
        members = tuple(sorted(dict.fromkeys(self.members)))
        if len(members) < 2:
            raise ValueError("Ensemble needs at least two distinct members")
        object.__setattr__(self, "members", members)
        from repro.gateway.ensemble import COMBINERS

        if self.method not in COMBINERS:
            raise ValueError(
                f"unknown ensemble method {self.method!r}; known: {sorted(COMBINERS)}"
            )
        if self.method == "weighted":
            if self.weights is None:
                raise ValueError("method 'weighted' requires weights")
            missing = sorted(set(members) - set(self.weights))
            if missing:
                raise ValueError(f"weights missing for ensemble members {missing}")
            object.__setattr__(self, "weights", dict(self.weights))
        elif self.weights is not None:
            raise ValueError(f"method {self.method!r} does not take weights")

    def versions_referenced(self) -> tuple[str, ...]:
        return tuple(self.members)

    def member_weights(self) -> tuple[float, ...] | None:
        """Weights aligned with :attr:`members` order (``None`` unless weighted)."""
        if self.weights is None:
            return None
        return tuple(self.weights[member] for member in self.members)

    def decide(self, key: str, view: RouteView) -> RoutingDecision:
        return RoutingDecision(ensemble=tuple(self.members))

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "members": list(self.members),
            "method": self.method,
            "weights": dict(self.weights) if self.weights is not None else None,
        }
