"""Versioned deployments over a :class:`~repro.serving.PredictionService`.

The registry is the control plane between bundles on disk and live traffic:

* a **deployment** is one fitted model pinned to ``(route, version)`` and
  registered in the underlying prediction service under the unambiguous name
  ``"<route>@<version>"``;
* a **route** is the stable name clients address (``"cuisine"``), holding any
  number of deployed versions, exactly one of which is *active*;
* :meth:`DeploymentRegistry.swap` atomically repoints the active version
  while requests are in flight — a request that already resolved its
  deployment keeps predicting against the version it started on (the old
  model stays registered, and the service's result cache is keyed by the
  versioned name, so retired versions can never leak probabilities into the
  new version's responses);
* :meth:`DeploymentRegistry.rollback` walks the swap history backwards.

Versions come from anywhere a fitted model does: in-process objects,
:class:`~repro.serving.ModelBundle` instances, bundle directories, or whole
export directories (one route per bundle, via
:func:`~repro.serving.bundle.discover_bundles`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.gateway.observability import RouteMetrics
from repro.gateway.policies import ActiveVersion, RouteView, TrafficPolicy
from repro.models.base import CuisineModel
from repro.serving.bundle import ModelBundle, discover_bundles
from repro.serving.service import PredictionService


def service_model_name(route: str, version: str) -> str:
    """The prediction-service registration name of a deployment."""
    return f"{route}@{version}"


@dataclass(frozen=True)
class Deployment:
    """One immutable ``(route, version)`` deployment.

    A resolved ``Deployment`` is what pins an in-flight request: it holds
    direct references to the model and its service name, so a concurrent
    swap cannot change what the request predicts against.
    """

    route: str
    version: str
    model: CuisineModel
    source: Path | None = None

    @property
    def service_name(self) -> str:
        return service_model_name(self.route, self.version)

    @property
    def label_space(self) -> tuple[str, ...]:
        return self.model.label_space


@dataclass(frozen=True)
class RouteSnapshot:
    """One atomically-taken picture of a route, pinning a whole request.

    Everything a request needs — the active pointer, the policy, the metrics
    sink, the label space and the deployment table — is captured under a
    single registry lock acquisition, so no interleaving of ``swap`` /
    ``retire`` / ``set_policy`` can make one request mix the state of two
    moments (e.g. decide on the old active version and then fail to resolve
    it because it was retired in between).
    """

    view: RouteView
    policy: TrafficPolicy
    metrics: RouteMetrics
    label_space: tuple[str, ...]
    deployments: Mapping[str, Deployment]

    def deployment(self, version: str | None = None) -> Deployment:
        """The deployment for *version* (default: the snapshot's active)."""
        target = version if version is not None else self.view.active
        if not target:
            raise RuntimeError(
                f"route {self.view.name!r} has no active version (every "
                f"deployment was dark); swap one in: {sorted(self.deployments)}"
            )
        try:
            return self.deployments[target]
        except KeyError:
            raise KeyError(
                f"no version {target!r} deployed on route {self.view.name!r}; "
                f"deployed: {sorted(self.deployments)}"
            ) from None


@dataclass
class _Route:
    name: str
    label_space: tuple[str, ...]
    deployments: dict[str, Deployment] = field(default_factory=dict)
    active: str = ""
    history: list[str] = field(default_factory=list)
    policy: TrafficPolicy = field(default_factory=ActiveVersion)
    metrics: RouteMetrics = field(default_factory=RouteMetrics)
    #: Latest eval-gate verdict (repro.eval), as its JSON-able dict.
    verdict: dict | None = None

    def view(self) -> RouteView:
        return RouteView(
            name=self.name,
            active=self.active,
            versions=tuple(sorted(self.deployments)),
        )


class DeploymentRegistry:
    """Routes, versions and the active pointers, over one prediction service.

    Args:
        service: The prediction service deployments are registered in; a
            private one is created by default (extra keyword arguments are
            forwarded to its constructor).
        mmap_bundles: Load bundles deployed by path memory-mapped (read-only
            arrays page-shared across processes serving the same bundle)
            instead of as private in-memory copies.  The cluster tier turns
            this on so N workers hold one physical copy of each bundle's
            arrays; predictions are bitwise-identical either way.
    """

    def __init__(
        self,
        service: PredictionService | None = None,
        *,
        mmap_bundles: bool = False,
        **service_kwargs,
    ) -> None:
        if service is not None and service_kwargs:
            raise ValueError("pass either a service or service kwargs, not both")
        self.service = service if service is not None else PredictionService(**service_kwargs)
        self.mmap_bundles = mmap_bundles
        self._lock = threading.RLock()
        self._routes: dict[str, _Route] = {}

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_names(route: str, version: str) -> None:
        if not route or "@" in route:
            raise ValueError(f"invalid route name {route!r} (non-empty, no '@')")
        if not version:
            raise ValueError("version must be a non-empty string")

    def deploy(
        self,
        route: str,
        version: str,
        model: CuisineModel | ModelBundle | str | Path,
        *,
        activate: bool | None = None,
        replace: bool = False,
    ) -> Deployment:
        """Deploy *model* as ``route@version``.

        Args:
            route: Route name (created on first deployment; its label space
                is fixed to the first model's).
            version: Version name, unique within the route unless *replace*.
            model: A fitted model, a loaded :class:`ModelBundle`, or a bundle
                directory path to load.
            activate: Make this the route's active version.  Defaults to
                ``True`` for a route's first deployment, ``False`` afterwards
                (deploy dark, then :meth:`swap`).
            replace: Allow re-deploying an existing version in place.

        Returns:
            The immutable :class:`Deployment` record.
        """
        self._validate_names(route, version)
        if isinstance(model, (str, Path)):
            model = ModelBundle.load(model, mmap=self.mmap_bundles)
        source = None
        if isinstance(model, ModelBundle):
            source = model.path
            model = model.model
        with self._lock:
            state = self._routes.get(route)
            if state is None:
                state = _Route(name=route, label_space=model.label_space)
                self._routes[route] = state
                first = True
            else:
                first = False
            if version in state.deployments and not replace:
                raise ValueError(
                    f"version {version!r} is already deployed on route {route!r}; "
                    f"pass replace=True to re-deploy in place"
                )
            missing = sorted(set(model.label_space) - set(state.label_space))
            if missing:
                raise ValueError(
                    f"cannot deploy {route}@{version}: model labels {missing} are "
                    f"not in the route label space"
                )
            deployment = Deployment(route=route, version=version, model=model, source=source)
            state.deployments[version] = deployment
            self.service.add_model(model, name=deployment.service_name)
            if activate if activate is not None else first:
                if state.active and state.active != version:
                    state.history.append(state.active)
                state.active = version
            return deployment

    def deploy_export_dir(
        self,
        export_dir: str | Path,
        version: str,
        routes: Sequence[str] | None = None,
        *,
        activate: bool | None = None,
    ) -> dict[str, Deployment]:
        """Deploy every bundle under *export_dir* as ``<bundle name>@version``.

        Bundle discovery is deterministic (see
        :func:`~repro.serving.bundle.discover_bundles`); *routes* restricts
        deployment to a subset of bundle names.

        Returns:
            ``route -> Deployment`` for everything deployed.
        """
        available = discover_bundles(export_dir)
        if routes is not None:
            missing = sorted(set(routes) - set(available))
            if missing:
                raise KeyError(
                    f"no bundles for routes {missing} under {export_dir}; "
                    f"available: {sorted(available)}"
                )
            available = {name: available[name] for name in routes}
        return {
            name: self.deploy(
                name,
                version,
                ModelBundle.load(path, mmap=self.mmap_bundles),
                activate=activate,
            )
            for name, path in sorted(available.items())
        }

    # ------------------------------------------------------------------
    # swap / rollback / retire
    # ------------------------------------------------------------------
    def swap(self, route: str, version: str) -> Deployment:
        """Atomically make *version* the active version of *route*.

        Requests that resolve after the swap returns are served by
        *version*; requests already in flight finish on the version they
        resolved.  The previous active version stays deployed (and is pushed
        onto the rollback history).
        """
        with self._lock:
            state = self._require_route(route)
            if version not in state.deployments:
                raise KeyError(
                    f"cannot swap route {route!r} to unknown version {version!r}; "
                    f"deployed: {sorted(state.deployments)}"
                )
            if version != state.active:
                if state.active:  # a dark-deployed route has no active yet
                    state.history.append(state.active)
                state.active = version
            return state.deployments[version]

    def rollback(self, route: str) -> Deployment:
        """Swap *route* back to the version active before the last swap."""
        with self._lock:
            state = self._require_route(route)
            while state.history:
                previous = state.history.pop()
                if previous in state.deployments and previous != state.active:
                    state.active = previous
                    return state.deployments[previous]
            raise RuntimeError(f"route {route!r} has no swap history to roll back to")

    def retire(self, route: str, version: str) -> None:
        """Remove a non-active, unreferenced version from the route.

        The deployment is unregistered from the prediction service, which
        also drops its cached results.  In-flight requests pinned to it (a
        resolved :class:`Deployment` holds the model object) finish
        unaffected; *new* resolutions of the version fail.
        """
        with self._lock:
            state = self._require_route(route)
            if version not in state.deployments:
                raise KeyError(f"no version {version!r} deployed on route {route!r}")
            if version == state.active:
                raise ValueError(
                    f"cannot retire the active version {version!r} of route "
                    f"{route!r}; swap first"
                )
            if version in state.policy.versions_referenced():
                raise ValueError(
                    f"cannot retire {route}@{version}: referenced by the route's "
                    f"{state.policy.kind!r} policy"
                )
            deployment = state.deployments.pop(version)
            state.history = [v for v in state.history if v != version]
            self.service.remove_model(deployment.service_name)

    # ------------------------------------------------------------------
    # policies
    # ------------------------------------------------------------------
    def set_policy(self, route: str, policy: TrafficPolicy) -> None:
        """Attach a traffic policy to *route* (validating its versions)."""
        with self._lock:
            state = self._require_route(route)
            missing = sorted(set(policy.versions_referenced()) - set(state.deployments))
            if missing:
                raise KeyError(
                    f"policy references undeployed versions {missing} on route "
                    f"{route!r}; deployed: {sorted(state.deployments)}"
                )
            state.policy = policy

    def clear_policy(self, route: str) -> None:
        """Reset *route* to the default active-version policy."""
        with self._lock:
            self._require_route(route).policy = ActiveVersion()

    def policy(self, route: str) -> TrafficPolicy:
        with self._lock:
            return self._require_route(route).policy

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _require_route(self, route: str) -> _Route:
        try:
            return self._routes[route]
        except KeyError:
            raise KeyError(
                f"no route {route!r}; available: {sorted(self._routes)}"
            ) from None

    def routes(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._routes))

    def versions(self, route: str) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._require_route(route).deployments))

    def active_version(self, route: str) -> str:
        with self._lock:
            return self._require_route(route).active

    def label_space(self, route: str) -> tuple[str, ...]:
        with self._lock:
            return self._require_route(route).label_space

    def view(self, route: str) -> RouteView:
        with self._lock:
            return self._require_route(route).view()

    def metrics(self, route: str) -> RouteMetrics:
        with self._lock:
            return self._require_route(route).metrics

    # ------------------------------------------------------------------
    # eval verdicts
    # ------------------------------------------------------------------
    def set_verdict(self, route: str, verdict: Mapping) -> None:
        """Store the latest eval-gate verdict for *route* (JSON-able dict).

        The registry only *stores* verdicts — producing them is
        :mod:`repro.eval`'s job, and acting on them is the caller's.  The
        stored dict is what ``GET /admin/routes/<route>/evaluate`` returns
        and what :meth:`describe` summarises for ``stats()``/``/metrics``.
        """
        with self._lock:
            self._require_route(route).verdict = dict(verdict)

    def verdict(self, route: str) -> dict | None:
        """The latest stored verdict of *route*, or ``None``."""
        with self._lock:
            stored = self._require_route(route).verdict
            return dict(stored) if stored is not None else None

    def route_snapshot(self, route: str) -> RouteSnapshot:
        """An atomic :class:`RouteSnapshot` of *route* (the data-plane read).

        The gateway takes exactly one snapshot per request and both decides
        *and* resolves against it, so a concurrent swap + retire cannot
        strand a request between routing and resolution.
        """
        with self._lock:
            state = self._require_route(route)
            return RouteSnapshot(
                view=state.view(),
                policy=state.policy,
                metrics=state.metrics,
                label_space=state.label_space,
                deployments=dict(state.deployments),
            )

    def resolve(self, route: str, version: str | None = None) -> Deployment:
        """The deployment serving *route* (*version*, or the active one).

        The returned record is immutable and keeps the model referenced —
        resolving **pins** an in-flight request to this version regardless of
        concurrent swaps or retirements.
        """
        with self._lock:
            state = self._require_route(route)
            target = version if version is not None else state.active
            if not target:
                raise RuntimeError(
                    f"route {route!r} has no active version (every deployment "
                    f"was dark); swap one in: {sorted(state.deployments)}"
                )
            try:
                return state.deployments[target]
            except KeyError:
                raise KeyError(
                    f"no version {target!r} deployed on route {route!r}; "
                    f"deployed: {sorted(state.deployments)}"
                ) from None

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-able snapshot of every route's deployments and policy."""
        with self._lock:
            described = {}
            for name, state in sorted(self._routes.items()):
                entry = {
                    "active": state.active,
                    "versions": sorted(state.deployments),
                    "history": list(state.history),
                    "policy": state.policy.describe(),
                    "label_space_size": len(state.label_space),
                }
                if state.verdict is not None:
                    # Compact summary only: the full verdict (reasons, layer
                    # details, statistics) stays behind GET .../evaluate.
                    # ``code`` is a float so the cluster fleet merge averages
                    # worker-reported verdicts instead of summing them.
                    entry["eval"] = {
                        "candidate": state.verdict.get("candidate", ""),
                        "baseline": state.verdict.get("baseline", ""),
                        "decision": state.verdict.get("decision", ""),
                        "code": float(state.verdict.get("code", 0.0)),
                    }
                described[name] = entry
            return described
