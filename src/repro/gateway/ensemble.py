"""Probability combination for ensemble routes.

All arithmetic here is deliberately boring NumPy — a fixed operation order
with no data-dependent branching — so that the gateway's combined output is
**bitwise reproducible**: combining the same member outputs with the same
method and weights yields the same float64 bits, every time, in every
process.  The test suite holds the gateway to that by re-deriving the
combination offline.

Member outputs may live in different label spaces (a canary retrained after
the class-imbalance ablation dropped cuisines, say); they are first scattered
onto the route's label space through the existing
:func:`repro.models.label_space.expand_to_label_space` machinery.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.models.label_space import expand_to_label_space


def align_to_label_space(
    probabilities: np.ndarray,
    model_label_space: Sequence[str],
    route_label_space: Sequence[str],
) -> np.ndarray:
    """Map a model's probability columns onto the route's label space.

    Identical label spaces pass through untouched (bit-for-bit); otherwise
    every model label must exist in the route label space and the columns are
    scattered + renormalised by :func:`expand_to_label_space`.
    """
    model_label_space = tuple(model_label_space)
    route_label_space = tuple(route_label_space)
    if model_label_space == route_label_space:
        return np.asarray(probabilities, dtype=np.float64)
    positions = {label: index for index, label in enumerate(route_label_space)}
    missing = [label for label in model_label_space if label not in positions]
    if missing:
        raise ValueError(
            f"model labels {missing} are not in the route label space "
            f"{list(route_label_space)}"
        )
    classes = [positions[label] for label in model_label_space]
    return expand_to_label_space(
        np.atleast_2d(np.asarray(probabilities, dtype=np.float64)),
        classes,
        len(route_label_space),
    )


def _combine_mean(stacked: np.ndarray, weights: Sequence[float] | None) -> np.ndarray:
    return np.mean(stacked, axis=0)


def _combine_weighted(stacked: np.ndarray, weights: Sequence[float] | None) -> np.ndarray:
    if weights is None:
        raise ValueError("weighted combination requires weights")
    weight_vector = np.asarray(weights, dtype=np.float64)
    if weight_vector.shape != (stacked.shape[0],):
        raise ValueError(
            f"got {weight_vector.shape[0] if weight_vector.ndim else 0} weights "
            f"for {stacked.shape[0]} members"
        )
    if not np.all(weight_vector > 0):
        raise ValueError("ensemble weights must be positive")
    combined = np.tensordot(weight_vector, stacked, axes=1)
    return combined / weight_vector.sum()

def _combine_majority(stacked: np.ndarray, weights: Sequence[float] | None) -> np.ndarray:
    # One argmax vote per member (ties -> lowest index, NumPy's argmax rule),
    # scattered to one-hot rows and averaged: the result is the vote-share
    # distribution, so the route's argmax is the majority label.
    members, n_samples, n_classes = stacked.shape
    votes = np.zeros((n_samples, n_classes), dtype=np.float64)
    winners = np.argmax(stacked, axis=2)  # (members, n_samples)
    rows = np.arange(n_samples)
    for member in range(members):
        votes[rows, winners[member]] += 1.0
    return votes / float(members)


COMBINERS: dict[str, Callable[[np.ndarray, Sequence[float] | None], np.ndarray]] = {
    "mean": _combine_mean,
    "weighted": _combine_weighted,
    "majority": _combine_majority,
}


def combine_probabilities(
    member_probabilities: Sequence[np.ndarray],
    method: str = "mean",
    weights: Sequence[float] | None = None,
) -> np.ndarray:
    """Combine label-space-aligned member outputs into one matrix.

    Args:
        member_probabilities: One ``(n_samples, n_classes)`` matrix per
            member, all in the **same** (route) label space and the same
            member order the caller will use for *weights*.
        method: ``"mean"`` (unweighted average), ``"weighted"``
            (weight-normalised linear combination) or ``"majority"``
            (argmax vote shares).
        weights: Per-member weights, aligned with *member_probabilities*
            (``"weighted"`` only).

    Returns:
        The combined ``(n_samples, n_classes)`` float64 matrix.
    """
    if not member_probabilities:
        raise ValueError("cannot combine an empty ensemble")
    try:
        combiner = COMBINERS[method]
    except KeyError:
        raise ValueError(
            f"unknown ensemble method {method!r}; known: {sorted(COMBINERS)}"
        ) from None
    stacked = np.stack(
        [np.asarray(matrix, dtype=np.float64) for matrix in member_probabilities]
    )
    if stacked.ndim != 3:
        raise ValueError(
            f"member outputs must be 2-D (n_samples, n_classes) matrices, "
            f"got stacked shape {stacked.shape}"
        )
    return combiner(stacked, weights)
