"""Versioned on-disk bundles for fitted models (the artifact protocol).

A **bundle** is a directory that makes one fitted model self-contained:

``manifest.json``
    Format version, registry name, label space, serialized feature spec,
    training-corpus fingerprint and the model's state *tree* — a nested
    JSON structure in which every NumPy array has been replaced by a
    ``{"__array__": <key>}`` reference.
``arrays-<digest>.npz``
    One compressed archive holding every referenced array under its key,
    named by a content digest and referenced from the manifest.  Every file
    is written atomically and the archive before the manifest, so a reader
    racing a re-export always pairs a manifest with exactly the archive it
    references (superseded archives are left behind for in-flight readers).

The split keeps the manifest human-readable (configs, vocabularies, idf
weights live in JSON, where floats round-trip exactly) while large weight
matrices stay in binary form.  :func:`write_bundle` / :func:`read_bundle` are
the only functions that touch the layout; models interact through
:meth:`repro.models.base.CuisineModel.save_bundle` /
:meth:`~repro.models.base.CuisineModel.load_bundle`.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.pipeline.store import atomic_replace

#: Bump when the bundle layout changes incompatibly.
BUNDLE_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Name of the per-array index written into an extracted-archive directory;
#: it is written last (atomically), so its presence marks a complete
#: extraction.
_EXTRACT_INDEX = "index.json"

_ARRAY_REF = "__array__"

#: Narrowing candidates for integer arrays, smallest first.
_INT_NARROWING: tuple[type, ...] = (np.int8, np.int16, np.int32)


@dataclass(frozen=True)
class DtypePolicy:
    """Opt-in storage dtype policy for bundle arrays.

    The default policy (``"exact"``) stores every array exactly as the model
    produced it.  Slimmer policies downcast *where a recorded tolerance check
    passes*: a float array is stored as ``float_dtype`` only when the
    round-trip ``allclose(array, array.astype(f).astype(original))`` holds at
    (*rtol*, *atol*); integer arrays are narrowed to the smallest of
    int8/int16/int32 that holds their value range (always lossless).  Every
    conversion is recorded in the manifest (original dtype, stored dtype,
    measured ``max_abs_error``), and the manifest's ``exact`` flag is true
    only when **no** array was changed — a loader can tell at a glance
    whether bitwise-identical behaviour is guaranteed.

    Shorthands accepted by :meth:`resolve` (and thus by
    ``save_bundle``/``write_bundle``):

    * ``None`` / ``"exact"`` — store everything untouched (the default);
    * ``"float32"`` — floats to float32 where the tolerance passes;
    * ``"slim"`` — ``"float32"`` plus lossless integer narrowing.
    """

    name: str = "exact"
    float_dtype: str | None = None
    narrow_ints: bool = False
    rtol: float = 1e-6
    atol: float = 1e-9

    @classmethod
    def resolve(cls, policy: "DtypePolicy | str | None") -> "DtypePolicy":
        """Normalise a policy argument (instance, shorthand, or ``None``)."""
        if policy is None:
            return cls()
        if isinstance(policy, DtypePolicy):
            return policy
        if policy == "exact":
            return cls()
        if policy == "float32":
            return cls(name="float32", float_dtype="float32")
        if policy == "slim":
            return cls(name="slim", float_dtype="float32", narrow_ints=True)
        raise ValueError(
            f"unknown dtype policy {policy!r}; expected a DtypePolicy, "
            "'exact', 'float32' or 'slim'"
        )

    # ------------------------------------------------------------------
    def apply(self, array: np.ndarray) -> tuple[np.ndarray, dict | None]:
        """``(stored_array, conversion_record)`` for one bundle array.

        The record is ``None`` when the array is stored untouched; otherwise
        it names the original/stored dtypes and the measured round-trip
        ``max_abs_error`` (0.0 for lossless integer narrowing).
        """
        if self.float_dtype is not None and np.issubdtype(array.dtype, np.floating):
            target = np.dtype(self.float_dtype)
            if target.itemsize < array.dtype.itemsize:
                with np.errstate(over="ignore"):  # overflow to inf fails allclose
                    stored = array.astype(target)
                round_trip = stored.astype(array.dtype)
                if np.allclose(array, round_trip, rtol=self.rtol, atol=self.atol, equal_nan=True):
                    error = (
                        float(np.max(np.abs(np.nan_to_num(array - round_trip))))
                        if array.size
                        else 0.0
                    )
                    return stored, {
                        "original": str(array.dtype),
                        "stored": str(target),
                        "max_abs_error": error,
                    }
        if self.narrow_ints and np.issubdtype(array.dtype, np.signedinteger):
            if array.size:
                low, high = int(array.min()), int(array.max())
                for candidate in _INT_NARROWING:
                    info = np.iinfo(candidate)
                    if np.dtype(candidate).itemsize >= array.dtype.itemsize:
                        break
                    if info.min <= low and high <= info.max:
                        return array.astype(candidate), {
                            "original": str(array.dtype),
                            "stored": str(np.dtype(candidate)),
                            "max_abs_error": 0.0,
                        }
        return array, None


def _flatten(value: Any, path: str, arrays: dict[str, np.ndarray]) -> Any:
    """Replace every array in a state tree by a reference into *arrays*."""
    if isinstance(value, np.ndarray):
        arrays[path] = value
        return {_ARRAY_REF: path}
    if isinstance(value, dict):
        if _ARRAY_REF in value:
            raise ValueError(
                f"state dict at {path!r} uses the reserved key {_ARRAY_REF!r}"
            )
        return {
            str(key): _flatten(item, f"{path}/{key}", arrays)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_flatten(item, f"{path}/{index}", arrays) for index, item in enumerate(value)]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"state value at {path!r} is not bundle-serialisable: {type(value).__name__}"
    )


def _unflatten(tree: Any, arrays: dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`_flatten`: resolve array references back to arrays."""
    if isinstance(tree, dict):
        if set(tree) == {_ARRAY_REF}:
            return arrays[tree[_ARRAY_REF]]
        return {key: _unflatten(item, arrays) for key, item in tree.items()}
    if isinstance(tree, list):
        return [_unflatten(item, arrays) for item in tree]
    return tree


def _state_digest(tree: Any, arrays: dict[str, np.ndarray]) -> str:
    """Content digest of a flattened state (tree structure + array bytes)."""
    digest = hashlib.blake2b(digest_size=8)
    digest.update(json.dumps(tree, sort_keys=True, separators=(",", ":")).encode("utf-8"))
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def write_bundle(
    path: str | Path,
    manifest: dict,
    state: dict,
    dtype_policy: DtypePolicy | str | None = None,
) -> Path:
    """Write a model bundle directory.

    Args:
        path: Bundle directory (created if needed; existing files are
            overwritten).
        manifest: Model metadata (name, label space, feature spec, ...).
            Must not contain the reserved keys ``format_version`` / ``state``
            / ``arrays`` / ``exact`` / ``dtype_policy`` / ``array_dtypes``.
        state: The model's :meth:`get_state` tree — nested dicts/lists with
            JSON-able leaves and NumPy arrays.
        dtype_policy: Storage dtype policy for the state arrays (a
            :class:`DtypePolicy`, the shorthands ``"exact"``/``"float32"``/
            ``"slim"``, or ``None`` for exact storage).  The written manifest
            carries the policy name, an ``exact`` flag (true only when no
            array was converted) and a per-array ``array_dtypes`` record of
            every conversion.

    Returns:
        The bundle directory path.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    reserved = {
        "format_version",
        "state",
        "arrays",
        "exact",
        "dtype_policy",
        "array_dtypes",
    } & set(manifest)
    if reserved:
        raise ValueError(f"manifest uses reserved keys: {sorted(reserved)}")
    policy = DtypePolicy.resolve(dtype_policy)
    arrays: dict[str, np.ndarray] = {}
    tree = _flatten(state, "state", arrays)
    conversions: dict[str, dict] = {}
    for key in sorted(arrays):
        stored, record = policy.apply(arrays[key])
        if record is not None:
            arrays[key] = stored
            conversions[key] = record

    def write_arrays(tmp: Path) -> None:
        with open(tmp, "wb") as stream:
            np.savez_compressed(stream, **arrays)

    # The archive carries a content digest in its name and is written
    # (atomically) before the manifest: a reader racing a re-export either
    # sees the old manifest + old archive or the new pair — never a mix.
    # Identical state re-exports to the same name; superseded archives are
    # left on disk for readers still holding the previous manifest.
    arrays_name = None
    if arrays:
        arrays_name = f"arrays-{_state_digest(tree, arrays)}.npz"
        atomic_replace(path / arrays_name, write_arrays)
    payload = {
        **manifest,
        "format_version": BUNDLE_FORMAT_VERSION,
        "arrays": arrays_name,
        "state": tree,
        #: True only when every array is stored bit-for-bit as produced;
        #: loaders use this to know whether bitwise-identical behaviour is
        #: guaranteed without inspecting array_dtypes.
        "exact": not conversions,
        "dtype_policy": policy.name,
        "array_dtypes": conversions,
    }
    atomic_replace(
        path / MANIFEST_NAME,
        lambda tmp: tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        ),
    )
    return path


def extract_archive(path: str | Path, archive_name: str) -> Path:
    """Extract a bundle's ``arrays-<digest>.npz`` into mappable ``.npy`` files.

    The compressed npz archive cannot be memory-mapped (its members are
    deflated inside the zip), so the mmap loading path materialises a sibling
    directory ``arrays-<digest>.extracted/`` holding one plain ``.npy`` file
    per array plus an ``index.json`` mapping array keys to file names.  The
    archive is content-addressed and immutable, so the extraction is too:

    * every ``.npy`` is written through :func:`atomic_replace`, and the index
      is written last — a directory with an index is always complete;
    * concurrent extractors (N cluster workers cold-starting on one bundle)
      may duplicate work but land byte-identical files, never torn ones;
    * a finished extraction is reused for free by every later mmap load, and
      its pages are shared by every process that maps them.

    Returns the extraction directory.
    """
    path = Path(path)
    extract_dir = path / f"{Path(archive_name).stem}.extracted"
    index_path = extract_dir / _EXTRACT_INDEX
    if index_path.is_file():
        return extract_dir
    extract_dir.mkdir(parents=True, exist_ok=True)
    index: dict[str, str] = {}
    with np.load(path / archive_name) as archive:
        # Keys are state paths ("state/coef"); file names are positional so
        # no sanitisation can collide.
        for position, key in enumerate(sorted(archive.files)):
            file_name = f"a{position:05d}.npy"
            array = archive[key]

            def write(tmp: Path, array: np.ndarray = array) -> None:
                with open(tmp, "wb") as stream:
                    np.save(stream, array)

            atomic_replace(extract_dir / file_name, write)
            index[key] = file_name
    atomic_replace(
        index_path,
        lambda tmp: tmp.write_text(json.dumps(index, sort_keys=True), encoding="utf-8"),
    )
    return extract_dir


def _load_arrays_mmap(
    path: Path, archive_name: str, materialize: Sequence[str]
) -> dict[str, np.ndarray]:
    """Memory-mapped view of a bundle's arrays (see :func:`extract_archive`).

    Arrays whose key matches an fnmatch pattern of *materialize* are loaded
    as ordinary in-memory copies — the opt-out for arrays a model mutates in
    place (a mapped array is read-only; writing to it raises).
    """
    extract_dir = extract_archive(path, archive_name)
    index = json.loads((extract_dir / _EXTRACT_INDEX).read_text(encoding="utf-8"))
    arrays: dict[str, np.ndarray] = {}
    for key, file_name in index.items():
        if any(fnmatch.fnmatchcase(key, pattern) for pattern in materialize):
            arrays[key] = np.load(extract_dir / file_name)
        else:
            arrays[key] = np.load(extract_dir / file_name, mmap_mode="r")
    return arrays


def read_bundle(
    path: str | Path,
    *,
    mmap: bool = False,
    materialize: Sequence[str] = (),
) -> tuple[dict, dict]:
    """Read a bundle directory back into ``(manifest, state)``.

    The returned manifest no longer contains the ``state``/``arrays`` keys;
    the state tree has every array reference resolved.

    Args:
        mmap: Load state arrays as read-only memory maps over an extracted
            ``.npy`` sidecar of the content-addressed archive (see
            :func:`extract_archive`) instead of in-memory copies.  Mapped
            pages are shared between every process serving the same bundle,
            so N workers hold one physical copy; array *values* are
            bit-for-bit identical to a normal load.
        materialize: fnmatch patterns (against state-array keys such as
            ``state/coef``) that are loaded as plain in-memory arrays even
            under ``mmap=True`` — the opt-out for arrays a model mutates.

    Raises:
        FileNotFoundError: When *path* is not a bundle directory.
        ValueError: On a format-version mismatch.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no model bundle at {path} (missing {MANIFEST_NAME})")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    version = manifest.pop("format_version", None)
    if version != BUNDLE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported bundle format version {version!r} at {path}; "
            f"this build reads version {BUNDLE_FORMAT_VERSION}"
        )
    arrays: dict[str, np.ndarray] = {}
    archive_name = manifest.pop("arrays", None)
    if archive_name:
        if mmap:
            arrays = _load_arrays_mmap(path, archive_name, materialize)
        else:
            with np.load(path / archive_name) as archive:
                arrays = {name: archive[name] for name in archive.files}
    state = _unflatten(manifest.pop("state"), arrays)
    return manifest, state


def is_bundle(path: str | Path) -> bool:
    """Whether *path* looks like a model bundle directory."""
    return (Path(path) / MANIFEST_NAME).is_file()
