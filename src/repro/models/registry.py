"""Model registry: name -> constructor mapping plus the paper's Table IV values.

The registry is what the experiment runner, the benchmarks and the examples
use to instantiate the seven models of Table IV by name.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.data.cuisines import CUISINES
from repro.models.base import CuisineModel
from repro.models.lstm_classifier import LSTMClassifierConfig, LSTMCuisineClassifier
from repro.models.statistical import (
    LogisticRegressionModel,
    NaiveBayesModel,
    RandomForestModel,
    SVMModel,
)
from repro.models.transformer_classifier import (
    BERTCuisineClassifier,
    RoBERTaCuisineClassifier,
    TransformerClassifierConfig,
)

#: Paper Table IV, used by the benchmark reports for side-by-side comparison.
PAPER_TABLE_IV: dict[str, dict[str, float]] = {
    "logreg": {"Accuracy": 57.70, "Loss": 1.51, "Precision": 0.56, "Recall": 0.57, "F1 Score": 0.56},
    "naive_bayes": {"Accuracy": 51.64, "Loss": 7.14, "Precision": 0.50, "Recall": 0.51, "F1 Score": 0.50},
    "svm_linear": {"Accuracy": 56.60, "Loss": 2.97, "Precision": 0.54, "Recall": 0.56, "F1 Score": 0.54},
    "random_forest": {"Accuracy": 50.37, "Loss": 2.32, "Precision": 0.48, "Recall": 0.50, "F1 Score": 0.49},
    "lstm": {"Accuracy": 53.61, "Loss": 1.65, "Precision": 0.53, "Recall": 0.54, "F1 Score": 0.53},
    "bert": {"Accuracy": 68.71, "Loss": 0.21, "Precision": 0.58, "Recall": 0.60, "F1 Score": 0.57},
    "roberta": {"Accuracy": 73.30, "Loss": 0.10, "Precision": 0.67, "Recall": 0.71, "F1 Score": 0.69},
}

#: Display names used in the paper's Table IV header.
DISPLAY_NAMES: dict[str, str] = {
    "logreg": "LogReg",
    "naive_bayes": "Naive Bayes",
    "svm_linear": "SVM (linear)",
    "random_forest": "Random Forest",
    "lstm": "LSTM",
    "bert": "BERT",
    "roberta": "RoBERTa",
}

#: Model names in the column order of Table IV.
MODEL_NAMES: tuple[str, ...] = tuple(DISPLAY_NAMES)

#: Which models consume sequences (vs. TF-IDF bags).
SEQUENTIAL_MODELS: frozenset[str] = frozenset({"lstm", "bert", "roberta"})

_FACTORIES: dict[str, Callable[..., CuisineModel]] = {
    "logreg": LogisticRegressionModel,
    "naive_bayes": NaiveBayesModel,
    "svm_linear": SVMModel,
    "random_forest": RandomForestModel,
    "lstm": LSTMCuisineClassifier,
    "bert": BERTCuisineClassifier,
    "roberta": RoBERTaCuisineClassifier,
}


def create_model(
    name: str,
    label_space: Sequence[str] = CUISINES,
    lstm_config: LSTMClassifierConfig | None = None,
    transformer_config: TransformerClassifierConfig | None = None,
    **kwargs,
) -> CuisineModel:
    """Instantiate a Table IV model by name.

    Args:
        name: One of :data:`MODEL_NAMES`.
        label_space: Cuisine label space shared by all models of a run.
        lstm_config: Optional config override for the LSTM model.
        transformer_config: Optional config override for BERT/RoBERTa.
        **kwargs: Extra keyword arguments passed to the model constructor
            (e.g. ``C`` for the statistical models).

    Returns:
        An unfitted :class:`~repro.models.base.CuisineModel`.

    Raises:
        KeyError: For unknown model names.
    """
    if name not in _FACTORIES:
        raise KeyError(f"unknown model {name!r}; known models: {sorted(_FACTORIES)}")
    factory = _FACTORIES[name]
    if name == "lstm" and lstm_config is not None:
        return factory(label_space=label_space, config=lstm_config, **kwargs)
    if name in ("bert", "roberta") and transformer_config is not None:
        return factory(label_space=label_space, config=transformer_config, **kwargs)
    return factory(label_space=label_space, **kwargs)


def model_class(name: str) -> type[CuisineModel]:
    """The model class registered under *name* (without instantiating it).

    Bundle loading consults the class for load-time policy (e.g.
    :attr:`~repro.models.base.CuisineModel.MMAP_MATERIALIZE`) before any
    arrays are read.
    """
    if name not in _FACTORIES:
        raise KeyError(f"unknown model {name!r}; known models: {sorted(_FACTORIES)}")
    factory = _FACTORIES[name]
    if isinstance(factory, type):
        return factory
    return CuisineModel  # non-class factories get the neutral default


def display_name(name: str) -> str:
    """Table IV column header for a registry name."""
    return DISPLAY_NAMES.get(name, name)


def is_sequential(name: str) -> bool:
    """Whether the named model consumes ordered sequences."""
    return name in SEQUENTIAL_MODELS


def describe_architecture(name: str) -> str:
    """Textual architecture summary of a model.

    The paper's flow/architecture figures (``flow.png``, ``lstm.png``,
    ``final_edit.png``) are diagrams rather than data plots; the reproduction
    renders them as these textual summaries.
    """
    summaries = {
        "logreg": (
            "Recipe items -> clean/lemmatize -> TF-IDF (word level) -> "
            "one-vs-rest logistic regression over 26 cuisines"
        ),
        "naive_bayes": (
            "Recipe items -> clean/lemmatize -> TF-IDF -> multinomial Naive Bayes "
            "(posterior argmax under feature independence)"
        ),
        "svm_linear": (
            "Recipe items -> clean/lemmatize -> TF-IDF -> one-vs-all linear SVM, "
            "decision by maximum margin confidence"
        ),
        "random_forest": (
            "Recipe items -> clean/lemmatize -> TF-IDF -> bagged CART forest + "
            "AdaBoost(SAMME) over shallow trees, averaged probabilities"
        ),
        "lstm": (
            "Recipe item sequence -> token embedding -> 2-layer LSTM "
            "(input/forget/output gates) -> final hidden state -> linear classifier"
        ),
        "bert": (
            "Recipe item sequence -> [CLS] + token + positional embeddings -> "
            "bidirectional Transformer encoder (multi-head self-attention, GELU FFN) "
            "pretrained with static-mask MLM -> [CLS] pooled head -> classifier"
        ),
        "roberta": (
            "Recipe item sequence -> [CLS] + token + positional embeddings -> "
            "bidirectional Transformer encoder pretrained longer with dynamic-mask MLM "
            "(no NSP) -> [CLS] pooled head -> classifier"
        ),
    }
    if name not in summaries:
        raise KeyError(f"unknown model {name!r}")
    return summaries[name]
