"""Shared interface of the paper's cuisine classification models.

Models implement a **two-phase API**: they declare a
:class:`~repro.pipeline.specs.FeatureSpec` describing the corpus artifacts
they consume, and implement :meth:`CuisineModel.fit_features` /
:meth:`CuisineModel.predict_proba_features` over precomputed
:class:`~repro.pipeline.specs.ModelInputs`.  The corpus-level
:meth:`CuisineModel.fit` / :meth:`CuisineModel.predict_proba` remain as thin
wrappers that resolve artifacts through a
:class:`~repro.pipeline.store.FeatureStore` — a shared store (as built by the
experiment runner) makes every preprocessing product compute-once across
models; a private store is created transparently for standalone use.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.core.metrics import ClassificationMetrics, evaluate_predictions
from repro.data.cuisines import CUISINES
from repro.data.recipedb import RecipeDB
from repro.pipeline.specs import FeatureSpec, ModelInputs
from repro.pipeline.store import FeatureStore


class CuisineModel(abc.ABC):
    """A cuisine classifier over :class:`~repro.data.recipedb.RecipeDB` corpora.

    Every Table IV model implements this interface: it declares the features
    it needs, is fit on precomputed training artifacts (optionally with
    validation artifacts), predicts class probabilities over a fixed cuisine
    label space, and is evaluated with the shared Table IV metric set.

    Attributes:
        name: Short identifier used by the registry and the report tables.
        label_space: Tuple of cuisine names defining the class indices.
    """

    #: Overridden by subclasses.
    name: str = "base"

    def __init__(self, label_space: Sequence[str] = CUISINES) -> None:
        if len(label_space) < 2:
            raise ValueError("label space must contain at least two cuisines")
        self.label_space: tuple[str, ...] = tuple(label_space)
        self._store: FeatureStore | None = None
        self._train_corpus: RecipeDB | None = None

    # ------------------------------------------------------------------
    # two-phase API (the override points)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def feature_spec(self) -> FeatureSpec:
        """The feature artifacts this model consumes."""

    @abc.abstractmethod
    def fit_features(
        self, train: ModelInputs, validation: ModelInputs | None = None
    ) -> "CuisineModel":
        """Fit the model on precomputed training (and validation) artifacts."""

    @abc.abstractmethod
    def predict_proba_features(self, features) -> np.ndarray:
        """Class-probability matrix from a precomputed feature artifact."""

    # ------------------------------------------------------------------
    # corpus-level compatibility wrappers
    # ------------------------------------------------------------------
    def fit(
        self,
        train: RecipeDB,
        validation: RecipeDB | None = None,
        store: FeatureStore | None = None,
    ) -> "CuisineModel":
        """Fit the model on *train* (using *validation* where applicable).

        Args:
            train: Training corpus.
            validation: Optional validation corpus.
            store: Feature store to resolve artifacts through.  Pass the
                experiment's shared store to reuse preprocessing across
                models; by default a private store is created.

        The model keeps references to the store and the training corpus so
        that later :meth:`predict_proba` calls can resolve artifacts keyed by
        the training fingerprint; with a private store this pins the training
        corpus and its cached (LRU-bounded) artifacts for the model's
        lifetime.  Share one store across models to keep a single copy.
        """
        self._store = store if store is not None else FeatureStore()
        self._train_corpus = train
        spec = self.feature_spec()
        train_inputs = self._store.model_inputs(
            spec, train, train_corpus=train, label_space=self.label_space
        )
        validation_inputs = None
        if validation is not None and len(validation) > 0:
            validation_inputs = self._store.model_inputs(
                spec, validation, train_corpus=train, label_space=self.label_space
            )
        return self.fit_features(train_inputs, validation_inputs)

    def predict_proba(self, corpus: RecipeDB) -> np.ndarray:
        """Class-probability matrix of shape ``(len(corpus), n_classes)``."""
        if self._store is None or self._train_corpus is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")
        inputs = self._store.model_inputs(
            self.feature_spec(),
            corpus,
            train_corpus=self._train_corpus,
            with_labels=False,
        )
        return self.predict_proba_features(inputs.features)

    # ------------------------------------------------------------------
    @property
    def n_classes(self) -> int:
        return len(self.label_space)

    def labels_of(self, corpus: RecipeDB) -> np.ndarray:
        """Integer labels of *corpus* under this model's label space."""
        return np.asarray(corpus.labels(self.label_space), dtype=np.int64)

    def predict(self, corpus: RecipeDB) -> list[str]:
        """Predicted cuisine names for every recipe of *corpus*."""
        probabilities = self.predict_proba(corpus)
        return [self.label_space[i] for i in probabilities.argmax(axis=1)]

    def evaluate(self, corpus: RecipeDB) -> ClassificationMetrics:
        """Table IV metrics of the model on *corpus*."""
        probabilities = self.predict_proba(corpus)
        return evaluate_predictions(
            self.labels_of(corpus), probabilities, n_classes=self.n_classes
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable description of the model."""
        return f"{type(self).__name__}(name={self.name!r}, classes={self.n_classes})"
