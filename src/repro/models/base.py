"""Shared interface of the paper's cuisine classification models."""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.core.metrics import ClassificationMetrics, evaluate_predictions
from repro.data.cuisines import CUISINES
from repro.data.recipedb import RecipeDB


class CuisineModel(abc.ABC):
    """A cuisine classifier over :class:`~repro.data.recipedb.RecipeDB` corpora.

    Every Table IV model implements this interface: it is fit on a training
    corpus (optionally using a validation corpus), predicts class
    probabilities over a fixed cuisine label space, and is evaluated with the
    shared Table IV metric set.

    Attributes:
        name: Short identifier used by the registry and the report tables.
        label_space: Tuple of cuisine names defining the class indices.
    """

    #: Overridden by subclasses.
    name: str = "base"

    def __init__(self, label_space: Sequence[str] = CUISINES) -> None:
        if len(label_space) < 2:
            raise ValueError("label space must contain at least two cuisines")
        self.label_space: tuple[str, ...] = tuple(label_space)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fit(self, train: RecipeDB, validation: RecipeDB | None = None) -> "CuisineModel":
        """Fit the model on *train* (using *validation* where applicable)."""

    @abc.abstractmethod
    def predict_proba(self, corpus: RecipeDB) -> np.ndarray:
        """Class-probability matrix of shape ``(len(corpus), n_classes)``."""

    # ------------------------------------------------------------------
    @property
    def n_classes(self) -> int:
        return len(self.label_space)

    def labels_of(self, corpus: RecipeDB) -> np.ndarray:
        """Integer labels of *corpus* under this model's label space."""
        return np.asarray(corpus.labels(self.label_space), dtype=np.int64)

    def predict(self, corpus: RecipeDB) -> list[str]:
        """Predicted cuisine names for every recipe of *corpus*."""
        probabilities = self.predict_proba(corpus)
        return [self.label_space[i] for i in probabilities.argmax(axis=1)]

    def evaluate(self, corpus: RecipeDB) -> ClassificationMetrics:
        """Table IV metrics of the model on *corpus*."""
        probabilities = self.predict_proba(corpus)
        return evaluate_predictions(
            self.labels_of(corpus), probabilities, n_classes=self.n_classes
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable description of the model."""
        return f"{type(self).__name__}(name={self.name!r}, classes={self.n_classes})"
