"""Shared interface of the paper's cuisine classification models.

Models implement a **two-phase API**: they declare a
:class:`~repro.pipeline.specs.FeatureSpec` describing the corpus artifacts
they consume, and implement :meth:`CuisineModel.fit_features` /
:meth:`CuisineModel.predict_proba_features` over precomputed
:class:`~repro.pipeline.specs.ModelInputs`.  The corpus-level
:meth:`CuisineModel.fit` / :meth:`CuisineModel.predict_proba` remain as thin
wrappers that resolve artifacts through a
:class:`~repro.pipeline.store.FeatureStore` — a shared store (as built by the
experiment runner) makes every preprocessing product compute-once across
models; a private store is created transparently for standalone use.
"""

from __future__ import annotations

import abc
import json
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core.metrics import ClassificationMetrics, evaluate_predictions
from repro.data.cuisines import CUISINES
from repro.data.recipedb import RecipeDB
from repro.pipeline.specs import FeatureSpec, ModelInputs, spec_to_dict
from repro.pipeline.store import FeatureStore
from repro.text.pipeline import PreprocessingPipeline


class CuisineModel(abc.ABC):
    """A cuisine classifier over :class:`~repro.data.recipedb.RecipeDB` corpora.

    Every Table IV model implements this interface: it declares the features
    it needs, is fit on precomputed training artifacts (optionally with
    validation artifacts), predicts class probabilities over a fixed cuisine
    label space, and is evaluated with the shared Table IV metric set.

    Attributes:
        name: Short identifier used by the registry and the report tables.
        label_space: Tuple of cuisine names defining the class indices.
    """

    #: Overridden by subclasses.
    name: str = "base"

    def __init__(self, label_space: Sequence[str] = CUISINES) -> None:
        if len(label_space) < 2:
            raise ValueError("label space must contain at least two cuisines")
        self.label_space: tuple[str, ...] = tuple(label_space)
        self._store: FeatureStore | None = None
        self._train_corpus: RecipeDB | None = None
        self._train_fingerprint: str | None = None
        self._serving_pipeline: PreprocessingPipeline | None = None
        #: Manifest of the bundle this model was loaded from, if any.
        self.bundle_manifest: dict | None = None

    # ------------------------------------------------------------------
    # two-phase API (the override points)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def feature_spec(self) -> FeatureSpec:
        """The feature artifacts this model consumes."""

    @abc.abstractmethod
    def fit_features(
        self, train: ModelInputs, validation: ModelInputs | None = None
    ) -> "CuisineModel":
        """Fit the model on precomputed training (and validation) artifacts."""

    @abc.abstractmethod
    def predict_proba_features(self, features) -> np.ndarray:
        """Class-probability matrix from a precomputed feature artifact."""

    # ------------------------------------------------------------------
    # the artifact protocol (override points for persistence/serving)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Fitted state as a nested dict of arrays and JSON-able values.

        Together with :meth:`set_state` this forms the artifact protocol: the
        round-trip through a saved bundle must reproduce
        :meth:`predict_proba` bitwise.  Model families implement it by
        delegating to their substrates (``repro.ml`` estimator states, the
        ``repro.nn`` module state dicts, vectorizer/vocabulary states).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the artifact protocol"
        )

    def set_state(self, state: dict) -> "CuisineModel":
        """Restore the fitted state produced by :meth:`get_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the artifact protocol"
        )

    def encode_tokens(self, token_lists: Sequence[Sequence[str]]):
        """Featurize preprocessed token sequences with the *fitted* artifacts.

        Unlike the :class:`FeatureStore` path (which fits vectorizers and
        vocabularies from a training corpus), this uses the model's own
        fitted vectorizer/encoder — the prediction-time path for models
        restored from bundles and for the serving layer.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the artifact protocol"
        )

    # ------------------------------------------------------------------
    # raw-sequence prediction (the serving path)
    # ------------------------------------------------------------------
    def _pipeline(self) -> PreprocessingPipeline:
        """The preprocessing pipeline of this model's feature spec (cached)."""
        config = self.feature_spec().pipeline
        if self._serving_pipeline is None or self._serving_pipeline.config != config:
            self._serving_pipeline = PreprocessingPipeline(config)
        return self._serving_pipeline

    def predict_proba_tokens(self, token_lists: Sequence[Sequence[str]]) -> np.ndarray:
        """Class probabilities for preprocessed token sequences."""
        return self.predict_proba_features(self.encode_tokens(token_lists))

    def predict_proba_sequences(self, sequences: Iterable[Sequence[str]]) -> np.ndarray:
        """Class probabilities for raw recipe item sequences.

        Runs the spec's preprocessing pipeline, featurizes with the fitted
        artifacts and predicts — no corpus or feature store required, which
        is exactly what a model restored from a bundle can do.
        """
        pipeline = self._pipeline()
        tokens = [pipeline.process_sequence(sequence) for sequence in sequences]
        return self.predict_proba_tokens(tokens)

    # ------------------------------------------------------------------
    # corpus-level compatibility wrappers
    # ------------------------------------------------------------------
    def fit(
        self,
        train: RecipeDB,
        validation: RecipeDB | None = None,
        store: FeatureStore | None = None,
    ) -> "CuisineModel":
        """Fit the model on *train* (using *validation* where applicable).

        Args:
            train: Training corpus.
            validation: Optional validation corpus.
            store: Feature store to resolve artifacts through.  Pass the
                experiment's shared store to reuse preprocessing across
                models; by default a private store is created.

        The model keeps references to the store and the training corpus so
        that later :meth:`predict_proba` calls can resolve artifacts keyed by
        the training fingerprint; with a private store this pins the training
        corpus and its cached (LRU-bounded) artifacts for the model's
        lifetime.  Share one store across models to keep a single copy.
        """
        self._store = store if store is not None else FeatureStore()
        self._train_corpus = train
        spec = self.feature_spec()
        train_inputs = self._store.model_inputs(
            spec, train, train_corpus=train, label_space=self.label_space
        )
        validation_inputs = None
        if validation is not None and len(validation) > 0:
            validation_inputs = self._store.model_inputs(
                spec, validation, train_corpus=train, label_space=self.label_space
            )
        return self.fit_features(train_inputs, validation_inputs)

    def predict_proba(self, corpus: RecipeDB) -> np.ndarray:
        """Class-probability matrix of shape ``(len(corpus), n_classes)``.

        Models fitted in-process resolve features through their store (shared
        artifacts, cached per corpus fingerprint); models restored from a
        bundle have no training corpus and featurize with their own fitted
        artifacts instead — both paths produce identical features.
        """
        if self._store is not None and self._train_corpus is not None:
            inputs = self._store.model_inputs(
                self.feature_spec(),
                corpus,
                train_corpus=self._train_corpus,
                with_labels=False,
            )
            return self.predict_proba_features(inputs.features)
        return self.predict_proba_sequences(corpus.sequences)

    # ------------------------------------------------------------------
    @property
    def n_classes(self) -> int:
        return len(self.label_space)

    def labels_of(self, corpus: RecipeDB) -> np.ndarray:
        """Integer labels of *corpus* under this model's label space."""
        return np.asarray(corpus.labels(self.label_space), dtype=np.int64)

    def predict(self, corpus: RecipeDB) -> list[str]:
        """Predicted cuisine names for every recipe of *corpus*."""
        probabilities = self.predict_proba(corpus)
        return [self.label_space[i] for i in probabilities.argmax(axis=1)]

    def evaluate(self, corpus: RecipeDB) -> ClassificationMetrics:
        """Table IV metrics of the model on *corpus*."""
        probabilities = self.predict_proba(corpus)
        return evaluate_predictions(
            self.labels_of(corpus), probabilities, n_classes=self.n_classes
        )

    # ------------------------------------------------------------------
    # bundle persistence
    # ------------------------------------------------------------------
    def save_bundle(self, path: str | Path, dtype_policy=None) -> Path:
        """Persist the fitted model as a self-contained bundle directory.

        The bundle (``manifest.json`` + ``arrays-<digest>.npz``, see
        :mod:`repro.models.artifacts`) carries the registry name, label
        space, serialized feature spec, training-corpus fingerprint and the
        full :meth:`get_state` tree — everything :meth:`load_bundle` needs to
        reproduce :meth:`predict_proba` bitwise in another process.

        Args:
            path: Bundle directory to write.
            dtype_policy: Opt-in storage dtype policy
                (:class:`~repro.models.artifacts.DtypePolicy` or the
                shorthands ``"exact"``/``"float32"``/``"slim"``).  The default
                stores arrays exactly; slimmer policies downcast where the
                policy's recorded tolerance check passes, trading bitwise
                reproducibility (tracked by the manifest's ``exact`` flag)
                for smaller bundles.
        """
        from repro.models.artifacts import write_bundle

        fingerprint = self._train_fingerprint
        if self._train_corpus is not None:
            fingerprint = self._train_corpus.fingerprint()
        manifest = {
            "model": self.name,
            "model_class": type(self).__name__,
            "label_space": list(self.label_space),
            "feature_spec": spec_to_dict(self.feature_spec()),
            "corpus_fingerprint": fingerprint,
        }
        return write_bundle(path, manifest, self.get_state(), dtype_policy=dtype_policy)

    #: fnmatch patterns (against bundle state-array keys, e.g.
    #: ``state/embeddings``) of arrays this model mutates in place after
    #: :meth:`set_state`.  Under ``load_bundle(mmap=True)`` matching arrays
    #: are materialised as writable in-memory copies instead of read-only
    #: maps; everything else stays mapped and page-shared across processes.
    MMAP_MATERIALIZE: tuple[str, ...] = ()

    @classmethod
    def load_bundle(cls, path: str | Path, *, mmap: bool = False) -> "CuisineModel":
        """Load a bundle saved by :meth:`save_bundle` into a fresh model.

        The model class is resolved through the registry by the bundled
        name, so ``CuisineModel.load_bundle(path)`` restores any registered
        model.  The returned model predicts without a feature store or
        training corpus (see :meth:`predict_proba_sequences`) and keeps the
        bundle's metadata in :attr:`bundle_manifest`.

        Args:
            mmap: Load state arrays as read-only memory maps over the
                bundle's extracted archive (one physical copy shared by
                every process serving the bundle) instead of private
                in-memory copies.  ``predict_proba`` is bitwise-identical
                either way; arrays named by the resolved model class's
                :attr:`MMAP_MATERIALIZE` patterns are copied into memory.
        """
        from repro.models.artifacts import read_bundle
        from repro.models.registry import create_model, model_class

        materialize: tuple[str, ...] = ()
        if mmap:
            # Peek the manifest for the registry name so the resolved class
            # can declare which arrays must stay writable copies.
            peek = json.loads(
                (Path(path) / "manifest.json").read_text(encoding="utf-8")
            )
            materialize = tuple(model_class(peek["model"]).MMAP_MATERIALIZE)
        manifest, state = read_bundle(path, mmap=mmap, materialize=materialize)
        model = create_model(manifest["model"], label_space=manifest["label_space"])
        model.set_state(state)
        model._train_fingerprint = manifest.get("corpus_fingerprint")
        model.bundle_manifest = manifest
        return model

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable description of the model."""
        return f"{type(self).__name__}(name={self.name!r}, classes={self.n_classes})"
