"""The 2-layer LSTM cuisine classifier (Table IV column "LSTM").

Recipes are encoded as item-level token sequences (the sequential
preprocessing of Section IV), embedded, run through a stacked LSTM, and the
final hidden state (at the last real token) is classified with a linear head.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

import numpy as np

from repro.data.cuisines import CUISINES
from repro.models.base import CuisineModel
from repro.nn.layers import Dropout, Embedding, Linear
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.rnn import LSTM
from repro.nn.tensor import Tensor
from repro.nn.trainer import Trainer, TrainerConfig, TrainingHistory
from repro.pipeline.specs import ModelInputs, SequenceSpec
from repro.text.pipeline import PipelineConfig
from repro.text.sequences import EncodedBatch, SequenceEncoder
from repro.text.vocabulary import Vocabulary


@dataclass(frozen=True)
class LSTMClassifierConfig:
    """Hyper-parameters of the LSTM cuisine classifier.

    The defaults are scaled to the synthetic corpus used by the benchmarks;
    the paper's full-scale run uses larger dimensions but the same topology
    (a "simple 2-layer LSTM").
    """

    embedding_dim: int = 48
    hidden_dim: int = 64
    num_layers: int = 2
    dropout: float = 0.15
    max_length: int = 48
    min_token_freq: int = 2
    max_vocab_size: int | None = 20000
    epochs: int = 6
    batch_size: int = 32
    learning_rate: float = 2e-3
    clip_norm: float = 1.0
    early_stopping_patience: int | None = 2
    seed: int = 0


class _LSTMNetwork(Module):
    """Embedding -> stacked LSTM -> final-state linear classifier."""

    def __init__(self, vocab_size: int, num_classes: int, config: LSTMClassifierConfig) -> None:
        super().__init__()
        self.embedding = Embedding(vocab_size, config.embedding_dim, seed=config.seed, pad_id=0)
        self.lstm = LSTM(
            config.embedding_dim,
            config.hidden_dim,
            num_layers=config.num_layers,
            dropout=config.dropout,
            seed=config.seed + 1,
        )
        self.dropout = Dropout(config.dropout, seed=config.seed + 2)
        self.classifier = Linear(config.hidden_dim, num_classes, seed=config.seed + 3)

    def forward(self, ids: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
        embedded = self.embedding(ids)
        _, final_hidden = self.lstm(embedded, mask=mask)
        return self.classifier(self.dropout(final_hidden))


class LSTMCuisineClassifier(CuisineModel):
    """Table IV "LSTM" — the sequential recurrent baseline."""

    name = "lstm"

    def __init__(
        self,
        label_space: Sequence[str] = CUISINES,
        config: LSTMClassifierConfig | None = None,
    ) -> None:
        super().__init__(label_space)
        self.config = config or LSTMClassifierConfig()
        self.vocabulary: Vocabulary | None = None
        self.encoder: SequenceEncoder | None = None
        self.network: _LSTMNetwork | None = None
        self.trainer: Trainer | None = None
        self.history: TrainingHistory | None = None

    # ------------------------------------------------------------------
    def feature_spec(self) -> SequenceSpec:
        cfg = self.config
        return SequenceSpec(
            pipeline=PipelineConfig(split_items=False),
            min_token_freq=cfg.min_token_freq,
            max_vocab_size=cfg.max_vocab_size,
            max_length=cfg.max_length,
            add_cls=False,
        )

    def fit_features(
        self, train: ModelInputs, validation: ModelInputs | None = None
    ) -> "LSTMCuisineClassifier":
        cfg = self.config
        self.vocabulary = train.vocabulary
        self.encoder = SequenceEncoder(
            self.vocabulary, max_length=cfg.max_length, add_cls=False
        )
        train_batch: EncodedBatch = train.features
        train_labels = train.labels

        self.network = _LSTMNetwork(len(self.vocabulary), self.n_classes, cfg)
        optimizer = Adam(self.network.parameters(), lr=cfg.learning_rate)
        self.trainer = Trainer(
            self.network,
            optimizer,
            config=TrainerConfig(
                epochs=cfg.epochs,
                batch_size=cfg.batch_size,
                clip_norm=cfg.clip_norm,
                early_stopping_patience=cfg.early_stopping_patience,
                shuffle_seed=cfg.seed,
            ),
        )

        val_args: tuple = (None, None, None)
        if validation is not None and len(validation) > 0:
            val_batch: EncodedBatch = validation.features
            val_args = (val_batch.ids, val_batch.mask, validation.labels)

        self.history = self.trainer.fit(
            train_batch.ids, train_batch.mask, train_labels, *val_args
        )
        return self

    def predict_proba_features(self, features: EncodedBatch) -> np.ndarray:
        if self.trainer is None:
            raise RuntimeError("LSTMCuisineClassifier is not fitted; call fit() first")
        logits = self.trainer.predict_logits(features.ids, features.mask)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    # the artifact protocol
    # ------------------------------------------------------------------
    def encode_tokens(self, token_lists) -> EncodedBatch:
        if self.encoder is None:
            raise RuntimeError("LSTMCuisineClassifier is not fitted; call fit() first")
        return self.encoder.encode(token_lists)

    def get_state(self) -> dict:
        if self.network is None:
            raise RuntimeError("LSTMCuisineClassifier is not fitted; call fit() first")
        return {
            "config": asdict(self.config),
            "vocabulary": self.vocabulary.get_state(),
            "network": self.network.state_dict(),
        }

    def set_state(self, state: dict) -> "LSTMCuisineClassifier":
        self.config = LSTMClassifierConfig(**state["config"])
        cfg = self.config
        self.vocabulary = Vocabulary.from_state(state["vocabulary"])
        self.encoder = SequenceEncoder(self.vocabulary, max_length=cfg.max_length, add_cls=False)
        self.network = _LSTMNetwork(len(self.vocabulary), self.n_classes, cfg)
        self.network.load_state_dict(dict(state["network"]))
        # A trainer is (re)attached purely for its batched predict_logits path.
        self.trainer = Trainer(
            self.network,
            Adam(self.network.parameters(), lr=cfg.learning_rate),
            config=TrainerConfig(epochs=cfg.epochs, batch_size=cfg.batch_size),
        )
        self.history = None
        return self
