"""BERT- and RoBERTa-style transformer cuisine classifiers (Table IV).

Both models share the same bidirectional Transformer encoder; they differ in
pretraining, mirroring the actual difference between BERT and RoBERTa that the
paper cites ("RoBERTa was trained on longer sequences for more training steps
than BERT", with dynamic masking):

* the **BERT preset** pretrains with static masking for fewer epochs;
* the **RoBERTa preset** pretrains with dynamic masking for more epochs and a
  slightly larger masked fraction.

Pretraining runs on the recipe corpus itself (masked-language modelling over
recipe item sequences) because the original web-scale pretraining corpora are
unavailable offline; the mechanism exercised — transfer from bidirectional
MLM pretraining into fine-tuned classification — is the same.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Sequence

import numpy as np

from repro.data.cuisines import CUISINES
from repro.models.base import CuisineModel
from repro.nn.mlm import MLMConfig, MLMPretrainingResult, pretrain_mlm
from repro.nn.optim import AdamW
from repro.nn.schedules import LinearWarmupDecay
from repro.nn.trainer import Trainer, TrainerConfig, TrainingHistory
from repro.nn.transformer import (
    TransformerConfig,
    TransformerForMaskedLM,
    TransformerForSequenceClassification,
)
from repro.pipeline.specs import ModelInputs, SequenceSpec
from repro.text.pipeline import PipelineConfig
from repro.text.sequences import EncodedBatch, SequenceEncoder
from repro.text.vocabulary import Vocabulary


@dataclass(frozen=True)
class TransformerClassifierConfig:
    """Hyper-parameters of a transformer cuisine classifier.

    Attributes:
        dim / num_heads / num_layers / ffn_dim / dropout: Encoder size.
        max_length: Maximum (truncated) sequence length including ``[CLS]``.
        min_token_freq / max_vocab_size: Vocabulary construction.
        pretrain_epochs: MLM pretraining epochs (0 disables pretraining).
        pretrain_dynamic_masking: RoBERTa-style dynamic masking if true,
            BERT-style static masking if false.
        pretrain_mask_probability: Fraction of tokens masked during MLM.
        pretrain_lr / pretrain_batch_size: MLM optimisation.
        epochs / batch_size / learning_rate / warmup_fraction / weight_decay:
            Fine-tuning optimisation.
        early_stopping_patience: Fine-tuning early stopping on validation loss.
        seed: PRNG seed.
    """

    dim: int = 64
    num_heads: int = 4
    num_layers: int = 2
    ffn_dim: int = 128
    dropout: float = 0.1
    max_length: int = 48
    min_token_freq: int = 2
    max_vocab_size: int | None = 20000
    pretrain_epochs: int = 2
    pretrain_dynamic_masking: bool = True
    pretrain_mask_probability: float = 0.15
    pretrain_lr: float = 3e-3
    pretrain_batch_size: int = 32
    epochs: int = 6
    batch_size: int = 32
    learning_rate: float = 2e-3
    warmup_fraction: float = 0.1
    weight_decay: float = 0.01
    clip_norm: float = 1.0
    early_stopping_patience: int | None = 2
    seed: int = 0


class TransformerCuisineClassifier(CuisineModel):
    """A transformer encoder fine-tuned for cuisine classification."""

    name = "transformer"

    def __init__(
        self,
        label_space: Sequence[str] = CUISINES,
        config: TransformerClassifierConfig | None = None,
    ) -> None:
        super().__init__(label_space)
        self.config = config or TransformerClassifierConfig()
        self.vocabulary: Vocabulary | None = None
        self.encoder: SequenceEncoder | None = None
        self.network: TransformerForSequenceClassification | None = None
        self.trainer: Trainer | None = None
        self.history: TrainingHistory | None = None
        self.pretraining_result: MLMPretrainingResult | None = None

    # ------------------------------------------------------------------
    def feature_spec(self) -> SequenceSpec:
        cfg = self.config
        return SequenceSpec(
            pipeline=PipelineConfig(split_items=False),
            min_token_freq=cfg.min_token_freq,
            max_vocab_size=cfg.max_vocab_size,
            max_length=cfg.max_length,
            add_cls=True,
        )

    def fit_features(
        self, train: ModelInputs, validation: ModelInputs | None = None
    ) -> "TransformerCuisineClassifier":
        cfg = self.config
        self.vocabulary = train.vocabulary
        self.encoder = SequenceEncoder(self.vocabulary, max_length=cfg.max_length, add_cls=True)
        train_batch: EncodedBatch = train.features
        train_labels = train.labels

        encoder_config = TransformerConfig(
            vocab_size=len(self.vocabulary),
            max_length=cfg.max_length,
            dim=cfg.dim,
            num_heads=cfg.num_heads,
            num_layers=cfg.num_layers,
            ffn_dim=cfg.ffn_dim,
            dropout=cfg.dropout,
            seed=cfg.seed,
        )

        # Phase 1 — masked-language-model pretraining on the training corpus.
        pretrained_state: dict[str, np.ndarray] | None = None
        if cfg.pretrain_epochs > 0:
            mlm_model = TransformerForMaskedLM(encoder_config)
            mlm_config = MLMConfig(
                mask_probability=cfg.pretrain_mask_probability,
                dynamic=cfg.pretrain_dynamic_masking,
                epochs=cfg.pretrain_epochs,
                batch_size=cfg.pretrain_batch_size,
                peak_lr=cfg.pretrain_lr,
                seed=cfg.seed,
            )
            self.pretraining_result = pretrain_mlm(
                mlm_model, train_batch.ids, train_batch.mask, self.vocabulary, mlm_config
            )
            pretrained_state = mlm_model.encoder.state_dict()

        # Phase 2 — supervised fine-tuning with the [CLS] classification head.
        self.network = TransformerForSequenceClassification(encoder_config, self.n_classes)
        if pretrained_state is not None:
            self.network.encoder.load_state_dict(pretrained_state)

        n_batches = int(np.ceil(len(train_labels) / cfg.batch_size))
        total_steps = max(1, n_batches * cfg.epochs)
        optimizer = AdamW(
            self.network.parameters(), lr=cfg.learning_rate, weight_decay=cfg.weight_decay
        )
        schedule = LinearWarmupDecay(
            optimizer,
            peak_lr=cfg.learning_rate,
            warmup_steps=max(1, int(total_steps * cfg.warmup_fraction)),
            total_steps=total_steps,
        )
        self.trainer = Trainer(
            self.network,
            optimizer,
            schedule=schedule,
            config=TrainerConfig(
                epochs=cfg.epochs,
                batch_size=cfg.batch_size,
                clip_norm=cfg.clip_norm,
                early_stopping_patience=cfg.early_stopping_patience,
                shuffle_seed=cfg.seed,
            ),
        )

        val_args: tuple = (None, None, None)
        if validation is not None and len(validation) > 0:
            val_batch: EncodedBatch = validation.features
            val_args = (val_batch.ids, val_batch.mask, validation.labels)

        self.history = self.trainer.fit(
            train_batch.ids, train_batch.mask, train_labels, *val_args
        )
        return self

    def predict_proba_features(self, features: EncodedBatch) -> np.ndarray:
        if self.trainer is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")
        logits = self.trainer.predict_logits(features.ids, features.mask)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    # the artifact protocol
    # ------------------------------------------------------------------
    def encode_tokens(self, token_lists) -> EncodedBatch:
        if self.encoder is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")
        return self.encoder.encode(token_lists)

    def get_state(self) -> dict:
        if self.network is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")
        return {
            "config": asdict(self.config),
            "vocabulary": self.vocabulary.get_state(),
            "network": self.network.state_dict(),
        }

    def set_state(self, state: dict) -> "TransformerCuisineClassifier":
        # The saved config is the preset-transformed one (e.g. RoBERTa's
        # doubled pretraining epochs), so it is restored verbatim rather than
        # re-derived through the subclass constructor.
        self.config = TransformerClassifierConfig(**state["config"])
        cfg = self.config
        self.vocabulary = Vocabulary.from_state(state["vocabulary"])
        self.encoder = SequenceEncoder(self.vocabulary, max_length=cfg.max_length, add_cls=True)
        encoder_config = TransformerConfig(
            vocab_size=len(self.vocabulary),
            max_length=cfg.max_length,
            dim=cfg.dim,
            num_heads=cfg.num_heads,
            num_layers=cfg.num_layers,
            ffn_dim=cfg.ffn_dim,
            dropout=cfg.dropout,
            seed=cfg.seed,
        )
        self.network = TransformerForSequenceClassification(encoder_config, self.n_classes)
        self.network.load_state_dict(dict(state["network"]))
        # A trainer is (re)attached purely for its batched predict_logits path.
        self.trainer = Trainer(
            self.network,
            AdamW(self.network.parameters(), lr=cfg.learning_rate, weight_decay=cfg.weight_decay),
            config=TrainerConfig(epochs=cfg.epochs, batch_size=cfg.batch_size),
        )
        self.history = None
        self.pretraining_result = None
        return self


class BERTCuisineClassifier(TransformerCuisineClassifier):
    """Table IV "BERT" — static masking, shorter pretraining."""

    name = "bert"

    def __init__(
        self,
        label_space: Sequence[str] = CUISINES,
        config: TransformerClassifierConfig | None = None,
    ) -> None:
        base = config or TransformerClassifierConfig()
        bert_config = replace(
            base,
            pretrain_dynamic_masking=False,
            pretrain_epochs=max(1, base.pretrain_epochs // 2) if base.pretrain_epochs else 0,
        )
        super().__init__(label_space, bert_config)


class RoBERTaCuisineClassifier(TransformerCuisineClassifier):
    """Table IV "RoBERTa" — dynamic masking, longer pretraining."""

    name = "roberta"

    def __init__(
        self,
        label_space: Sequence[str] = CUISINES,
        config: TransformerClassifierConfig | None = None,
    ) -> None:
        base = config or TransformerClassifierConfig()
        roberta_config = replace(
            base,
            pretrain_dynamic_masking=True,
            pretrain_epochs=max(base.pretrain_epochs, 1) * 2 if base.pretrain_epochs else 0,
        )
        super().__init__(label_space, roberta_config)
