"""The paper's cuisine-classification models.

One class per column of Table IV, all sharing the
:class:`~repro.models.base.CuisineModel` interface:

* statistical TF-IDF models — Logistic Regression, Naive Bayes, linear SVM,
  Random Forest (+AdaBoost);
* sequential models — the 2-layer LSTM and the BERT / RoBERTa style
  transformers with in-domain MLM pretraining.

Use :func:`repro.models.registry.create_model` (or
:class:`repro.core.classifier.CuisineClassifier`) to instantiate them by name.
"""

from repro.models.base import CuisineModel
from repro.models.label_space import expand_to_label_space
from repro.models.lstm_classifier import LSTMClassifierConfig, LSTMCuisineClassifier
from repro.models.registry import (
    MODEL_NAMES,
    PAPER_TABLE_IV,
    create_model,
    describe_architecture,
)
from repro.models.statistical import (
    LogisticRegressionModel,
    NaiveBayesModel,
    RandomForestModel,
    StatisticalModel,
    SVMModel,
)
from repro.models.transformer_classifier import (
    BERTCuisineClassifier,
    RoBERTaCuisineClassifier,
    TransformerClassifierConfig,
    TransformerCuisineClassifier,
)

__all__ = [
    "CuisineModel",
    "StatisticalModel",
    "LogisticRegressionModel",
    "NaiveBayesModel",
    "SVMModel",
    "RandomForestModel",
    "LSTMClassifierConfig",
    "LSTMCuisineClassifier",
    "TransformerClassifierConfig",
    "TransformerCuisineClassifier",
    "BERTCuisineClassifier",
    "RoBERTaCuisineClassifier",
    "MODEL_NAMES",
    "PAPER_TABLE_IV",
    "create_model",
    "describe_architecture",
    "expand_to_label_space",
]
