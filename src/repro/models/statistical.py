"""Statistical (TF-IDF) models of Table IV.

Each model is the composition of the Section IV statistical preprocessing
(word-level tokenization + lemmatization), TF-IDF vectorization and one of the
classical classifiers from :mod:`repro.ml`.  These models see recipes as
unordered bags of items — the paper's point of comparison for the sequential
models.

The preprocessing/vectorization phase is declared through a
:class:`~repro.pipeline.specs.TfidfSpec`; the classifiers themselves only see
precomputed matrices (the two-phase API), so all four statistical models of a
run share one pipeline pass and one fitted vectorizer per configuration.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.cuisines import CUISINES
from repro.features.tfidf import TfidfVectorizer
from repro.ml.base import BaseClassifier
from repro.ml.boosting import AdaBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic_regression import LogisticRegressionClassifier
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.ml.svm import LinearSVMClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.models.base import CuisineModel
from repro.models.label_space import expand_to_label_space
from repro.pipeline.specs import ModelInputs, TfidfSpec, spec_from_dict, spec_to_dict
from repro.text.pipeline import PipelineConfig


class StatisticalModel(CuisineModel):
    """TF-IDF features + a classical classifier.

    Args:
        classifier: Any fitted-interface classifier from :mod:`repro.ml`.
        label_space: Cuisine label space.
        min_df: TF-IDF document-frequency floor.
        max_features: Cap on the TF-IDF vocabulary (None = unlimited).
        sublinear_tf: Use ``1 + log(tf)`` term frequencies.
    """

    name = "statistical"

    def __init__(
        self,
        classifier: BaseClassifier,
        label_space: Sequence[str] = CUISINES,
        min_df: int = 2,
        max_features: int | None = 20000,
        sublinear_tf: bool = True,
    ) -> None:
        super().__init__(label_space)
        self.classifier = classifier
        self._spec = TfidfSpec(
            pipeline=PipelineConfig(split_items=True),
            min_df=min_df,
            max_features=max_features,
            sublinear_tf=sublinear_tf,
        )
        #: The fitted vectorizer artifact, populated by :meth:`fit_features`.
        self.vectorizer = None
        self._fitted = False

    # ------------------------------------------------------------------
    def feature_spec(self) -> TfidfSpec:
        return self._spec

    def fit_features(
        self, train: ModelInputs, validation: ModelInputs | None = None
    ) -> "StatisticalModel":
        self.vectorizer = train.vectorizer
        self.classifier.fit(train.features, train.labels)
        self._fitted = True
        return self

    def predict_proba_features(self, features) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")
        probabilities = self.classifier.predict_proba(features)
        return expand_to_label_space(probabilities, self.classifier.classes_, self.n_classes)

    # ------------------------------------------------------------------
    # the artifact protocol
    # ------------------------------------------------------------------
    def encode_tokens(self, token_lists):
        if self.vectorizer is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")
        return self.vectorizer.transform(token_lists)

    def get_state(self) -> dict:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")
        return {
            "spec": spec_to_dict(self._spec),
            "vectorizer": self.vectorizer.get_state(),
            "classifier": self.classifier.get_state(),
        }

    def set_state(self, state: dict) -> "StatisticalModel":
        self._spec = spec_from_dict(state["spec"])
        self.vectorizer = TfidfVectorizer.from_state(state["vectorizer"])
        self.classifier.set_state(state["classifier"])
        self._fitted = True
        return self


class LogisticRegressionModel(StatisticalModel):
    """Table IV column "LogReg" — one-vs-rest logistic regression on TF-IDF."""

    name = "logreg"

    def __init__(
        self,
        label_space: Sequence[str] = CUISINES,
        C: float = 10.0,
        max_iter: int = 400,
        multi_class: str = "ovr",
        **tfidf_kwargs,
    ) -> None:
        classifier = LogisticRegressionClassifier(
            multi_class=multi_class, C=C, max_iter=max_iter
        )
        super().__init__(classifier, label_space, **tfidf_kwargs)


class NaiveBayesModel(StatisticalModel):
    """Table IV column "Naive Bayes" — multinomial NB on TF-IDF."""

    name = "naive_bayes"

    def __init__(
        self, label_space: Sequence[str] = CUISINES, alpha: float = 0.3, **tfidf_kwargs
    ) -> None:
        super().__init__(MultinomialNaiveBayes(alpha=alpha), label_space, **tfidf_kwargs)


class SVMModel(StatisticalModel):
    """Table IV column "SVM (linear)" — one-vs-rest linear SVM on TF-IDF."""

    name = "svm_linear"

    def __init__(
        self,
        label_space: Sequence[str] = CUISINES,
        C: float = 5.0,
        max_iter: int = 300,
        **tfidf_kwargs,
    ) -> None:
        super().__init__(LinearSVMClassifier(C=C, max_iter=max_iter), label_space, **tfidf_kwargs)


class RandomForestModel(StatisticalModel):
    """Table IV column "Random Forest" — RF with AdaBoost over shallow trees.

    The paper describes "Random Forest with Boosting"; the reproduction fits a
    random forest and, when ``use_boosting`` is true, an AdaBoost ensemble of
    shallow trees whose probabilities are averaged with the forest's.
    """

    name = "random_forest"

    def __init__(
        self,
        label_space: Sequence[str] = CUISINES,
        n_estimators: int = 40,
        max_depth: int = 20,
        use_boosting: bool = True,
        boosting_rounds: int = 15,
        max_features: int | None = 2000,
        random_state: int = 0,
        **tfidf_kwargs,
    ) -> None:
        # TF-IDF vocabulary is capped harder for the tree models: dense slices
        # of a 20k-wide matrix are wasteful and trees only use a few hundred
        # informative features anyway.
        tfidf_kwargs.setdefault("max_features", max_features)
        forest = RandomForestClassifier(
            n_estimators=n_estimators,
            max_depth=max_depth,
            max_features="sqrt",
            random_state=random_state,
        )
        super().__init__(forest, label_space, **tfidf_kwargs)
        self.use_boosting = use_boosting
        self.booster = (
            AdaBoostClassifier(
                n_estimators=boosting_rounds,
                base_estimator_factory=lambda: DecisionTreeClassifier(
                    max_depth=3, max_features="sqrt", random_state=random_state
                ),
                random_state=random_state,
            )
            if use_boosting
            else None
        )

    def fit_features(
        self, train: ModelInputs, validation: ModelInputs | None = None
    ) -> "RandomForestModel":
        super().fit_features(train, validation)
        if self.booster is not None:
            self.booster.fit(train.features, train.labels)
        return self

    def predict_proba_features(self, features) -> np.ndarray:
        forest_probabilities = super().predict_proba_features(features)
        if self.booster is None:
            return forest_probabilities
        boost_probabilities = expand_to_label_space(
            self.booster.predict_proba(features), self.booster.classes_, self.n_classes
        )
        combined = 0.5 * forest_probabilities + 0.5 * boost_probabilities
        return combined / combined.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        state = super().get_state()
        state["booster"] = self.booster.get_state() if self.booster is not None else None
        return state

    def set_state(self, state: dict) -> "RandomForestModel":
        super().set_state(state)
        booster_state = state.get("booster")
        if booster_state is None:
            self.use_boosting = False
            self.booster = None
        else:
            self.use_boosting = True
            if self.booster is None:
                self.booster = AdaBoostClassifier()
            self.booster.set_state(booster_state)
        return self
