"""Statistical (TF-IDF) models of Table IV.

Each model is the composition of the Section IV statistical preprocessing
(word-level tokenization + lemmatization), TF-IDF vectorization and one of the
classical classifiers from :mod:`repro.ml`.  These models see recipes as
unordered bags of items — the paper's point of comparison for the sequential
models.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.cuisines import CUISINES
from repro.data.recipedb import RecipeDB
from repro.features.tfidf import TfidfVectorizer
from repro.ml.base import BaseClassifier
from repro.ml.boosting import AdaBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic_regression import LogisticRegressionClassifier
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.ml.svm import LinearSVMClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.models.base import CuisineModel
from repro.text.pipeline import default_statistical_pipeline


class StatisticalModel(CuisineModel):
    """TF-IDF features + a classical classifier.

    Args:
        classifier: Any fitted-interface classifier from :mod:`repro.ml`.
        label_space: Cuisine label space.
        min_df: TF-IDF document-frequency floor.
        max_features: Cap on the TF-IDF vocabulary (None = unlimited).
        sublinear_tf: Use ``1 + log(tf)`` term frequencies.
    """

    name = "statistical"

    def __init__(
        self,
        classifier: BaseClassifier,
        label_space: Sequence[str] = CUISINES,
        min_df: int = 2,
        max_features: int | None = 20000,
        sublinear_tf: bool = True,
    ) -> None:
        super().__init__(label_space)
        self.classifier = classifier
        self.pipeline = default_statistical_pipeline()
        self.vectorizer = TfidfVectorizer(
            min_df=min_df, max_features=max_features, sublinear_tf=sublinear_tf
        )
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, train: RecipeDB, validation: RecipeDB | None = None) -> "StatisticalModel":
        documents = self.pipeline.documents(train)
        features = self.vectorizer.fit_transform(documents)
        labels = self.labels_of(train)
        self.classifier.fit(features, labels)
        self._fitted = True
        return self

    def predict_proba(self, corpus: RecipeDB) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")
        documents = self.pipeline.documents(corpus)
        features = self.vectorizer.transform(documents)
        probabilities = self.classifier.predict_proba(features)
        return self._expand_to_label_space(probabilities)

    def _expand_to_label_space(self, probabilities: np.ndarray) -> np.ndarray:
        """Map classifier-class columns onto the full label space."""
        full = np.zeros((probabilities.shape[0], self.n_classes))
        for column, class_index in enumerate(self.classifier.classes_):
            full[:, int(class_index)] = probabilities[:, column]
        row_sums = full.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        return full / row_sums


class LogisticRegressionModel(StatisticalModel):
    """Table IV column "LogReg" — one-vs-rest logistic regression on TF-IDF."""

    name = "logreg"

    def __init__(
        self,
        label_space: Sequence[str] = CUISINES,
        C: float = 10.0,
        max_iter: int = 400,
        multi_class: str = "ovr",
        **tfidf_kwargs,
    ) -> None:
        classifier = LogisticRegressionClassifier(
            multi_class=multi_class, C=C, max_iter=max_iter
        )
        super().__init__(classifier, label_space, **tfidf_kwargs)


class NaiveBayesModel(StatisticalModel):
    """Table IV column "Naive Bayes" — multinomial NB on TF-IDF."""

    name = "naive_bayes"

    def __init__(
        self, label_space: Sequence[str] = CUISINES, alpha: float = 0.3, **tfidf_kwargs
    ) -> None:
        super().__init__(MultinomialNaiveBayes(alpha=alpha), label_space, **tfidf_kwargs)


class SVMModel(StatisticalModel):
    """Table IV column "SVM (linear)" — one-vs-rest linear SVM on TF-IDF."""

    name = "svm_linear"

    def __init__(
        self,
        label_space: Sequence[str] = CUISINES,
        C: float = 5.0,
        max_iter: int = 300,
        **tfidf_kwargs,
    ) -> None:
        super().__init__(LinearSVMClassifier(C=C, max_iter=max_iter), label_space, **tfidf_kwargs)


class RandomForestModel(StatisticalModel):
    """Table IV column "Random Forest" — RF with AdaBoost over shallow trees.

    The paper describes "Random Forest with Boosting"; the reproduction fits a
    random forest and, when ``use_boosting`` is true, an AdaBoost ensemble of
    shallow trees whose probabilities are averaged with the forest's.
    """

    name = "random_forest"

    def __init__(
        self,
        label_space: Sequence[str] = CUISINES,
        n_estimators: int = 40,
        max_depth: int = 20,
        use_boosting: bool = True,
        boosting_rounds: int = 15,
        max_features: int | None = 2000,
        random_state: int = 0,
        **tfidf_kwargs,
    ) -> None:
        # TF-IDF vocabulary is capped harder for the tree models: dense slices
        # of a 20k-wide matrix are wasteful and trees only use a few hundred
        # informative features anyway.
        tfidf_kwargs.setdefault("max_features", max_features)
        forest = RandomForestClassifier(
            n_estimators=n_estimators,
            max_depth=max_depth,
            max_features="sqrt",
            random_state=random_state,
        )
        super().__init__(forest, label_space, **tfidf_kwargs)
        self.use_boosting = use_boosting
        self.booster = (
            AdaBoostClassifier(
                n_estimators=boosting_rounds,
                base_estimator_factory=lambda: DecisionTreeClassifier(
                    max_depth=3, max_features="sqrt", random_state=random_state
                ),
                random_state=random_state,
            )
            if use_boosting
            else None
        )

    def fit(self, train: RecipeDB, validation: RecipeDB | None = None) -> "RandomForestModel":
        documents = self.pipeline.documents(train)
        features = self.vectorizer.fit_transform(documents)
        labels = self.labels_of(train)
        self.classifier.fit(features, labels)
        if self.booster is not None:
            self.booster.fit(features, labels)
        self._fitted = True
        return self

    def predict_proba(self, corpus: RecipeDB) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")
        documents = self.pipeline.documents(corpus)
        features = self.vectorizer.transform(documents)
        forest_probabilities = self._expand(self.classifier, features)
        if self.booster is None:
            return forest_probabilities
        boost_probabilities = self._expand(self.booster, features)
        combined = 0.5 * forest_probabilities + 0.5 * boost_probabilities
        return combined / combined.sum(axis=1, keepdims=True)

    def _expand(self, classifier: BaseClassifier, features) -> np.ndarray:
        probabilities = classifier.predict_proba(features)
        full = np.zeros((probabilities.shape[0], self.n_classes))
        for column, class_index in enumerate(classifier.classes_):
            full[:, int(class_index)] = probabilities[:, column]
        row_sums = full.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        return full / row_sums
