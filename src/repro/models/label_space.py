"""Label-space utilities shared by the cuisine models.

A classifier trained on a corpus may have seen only a subset of the full
cuisine label space (rare cuisines can be missing from a small training
split).  Its probability columns are indexed by ``classifier.classes_``;
evaluation, however, runs over the full label space.  The expansion below maps
classifier columns onto their label-space indices and renormalises.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def expand_to_label_space(
    probabilities: np.ndarray, classes: Sequence[int], n_classes: int
) -> np.ndarray:
    """Scatter classifier probability columns onto the full label space.

    Args:
        probabilities: ``(n_samples, len(classes))`` probability matrix.
        classes: Label-space index of each probability column (the
            classifier's ``classes_`` attribute).
        n_classes: Size of the full label space.

    Returns:
        A row-normalised ``(n_samples, n_classes)`` matrix; rows that sum to
        zero are left as all-zeros rather than divided by zero.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    class_indices = np.asarray(classes, dtype=np.int64)
    if probabilities.ndim != 2 or probabilities.shape[1] != class_indices.shape[0]:
        raise ValueError(
            f"probability matrix of shape {probabilities.shape} does not match "
            f"{class_indices.shape[0]} classifier classes"
        )
    if class_indices.size and (class_indices.min() < 0 or class_indices.max() >= n_classes):
        raise ValueError(
            f"classifier classes {class_indices.tolist()} fall outside the "
            f"label space of size {n_classes}"
        )
    full = np.zeros((probabilities.shape[0], n_classes))
    full[:, class_indices] = probabilities
    row_sums = full.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0.0] = 1.0
    return full / row_sums
