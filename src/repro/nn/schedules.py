"""Learning-rate schedules."""

from __future__ import annotations

import abc

from repro.nn.optim import Optimizer


class Schedule(abc.ABC):
    """Base learning-rate schedule driving an :class:`Optimizer`."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.step_count = 0

    @abc.abstractmethod
    def learning_rate(self, step: int) -> float:
        """Learning rate at *step* (0-based)."""

    def step(self) -> float:
        """Advance one step and apply the new learning rate."""
        lr = self.learning_rate(self.step_count)
        self.optimizer.set_lr(lr)
        self.step_count += 1
        return lr


class ConstantSchedule(Schedule):
    """Keeps the optimizer's initial learning rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        super().__init__(optimizer)
        self._lr = optimizer.lr

    def learning_rate(self, step: int) -> float:
        return self._lr


class LinearWarmupDecay(Schedule):
    """Linear warmup followed by linear decay to zero.

    This is the schedule BERT-style pretraining and fine-tuning use.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        peak_lr: float,
        warmup_steps: int,
        total_steps: int,
        floor: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        if warmup_steps < 0 or total_steps <= 0:
            raise ValueError("warmup_steps must be >= 0 and total_steps > 0")
        if warmup_steps > total_steps:
            raise ValueError("warmup_steps cannot exceed total_steps")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.floor = floor

    def learning_rate(self, step: int) -> float:
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        remaining = max(self.total_steps - step, 0)
        decay_span = max(self.total_steps - self.warmup_steps, 1)
        return max(self.floor, self.peak_lr * remaining / decay_span)


class CosineWarmupDecay(Schedule):
    """Linear warmup followed by cosine decay."""

    def __init__(
        self,
        optimizer: Optimizer,
        peak_lr: float,
        warmup_steps: int,
        total_steps: int,
        floor: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        if warmup_steps < 0 or total_steps <= 0:
            raise ValueError("warmup_steps must be >= 0 and total_steps > 0")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.floor = floor

    def learning_rate(self, step: int) -> float:
        import math

        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        progress = min(1.0, (step - self.warmup_steps) / max(self.total_steps - self.warmup_steps, 1))
        return self.floor + (self.peak_lr - self.floor) * 0.5 * (1 + math.cos(math.pi * progress))
