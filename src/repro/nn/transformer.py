"""Transformer encoder (Section V-F of the paper).

A BERT-style bidirectional encoder: token embeddings + learned positional
embeddings, a stack of pre-norm encoder blocks (multi-head self-attention and
a GELU feed-forward network with residual connections), and two heads — a
masked-language-model head for pretraining and a ``[CLS]``-pooled
classification head for fine-tuning.

The "BERT" and "RoBERTa" configurations of the paper differ in how they are
*pretrained* (RoBERTa: longer, with dynamic masking, no next-sentence
prediction); the encoder itself is shared.  See
:mod:`repro.models.transformer_classifier` for the two presets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyper-parameters of the encoder.

    Attributes:
        vocab_size: Token vocabulary size (including special tokens).
        max_length: Maximum sequence length (positional table size).
        dim: Model dimension.
        num_heads: Attention heads per block.
        num_layers: Number of encoder blocks.
        ffn_dim: Hidden width of the feed-forward network.
        dropout: Dropout rate used throughout.
        seed: Initialisation seed.
    """

    vocab_size: int
    max_length: int = 64
    dim: int = 64
    num_heads: int = 4
    num_layers: int = 2
    ffn_dim: int = 128
    dropout: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size < 5:
            raise ValueError("vocab_size must include the special tokens")
        if self.dim % self.num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")


class EncoderBlock(Module):
    """One pre-norm transformer encoder block."""

    def __init__(self, config: TransformerConfig, seed: int) -> None:
        super().__init__()
        self.attention = MultiHeadSelfAttention(
            config.dim, config.num_heads, dropout=config.dropout, seed=seed
        )
        self.attention_norm = LayerNorm(config.dim)
        self.ffn_norm = LayerNorm(config.dim)
        self.ffn_in = Linear(config.dim, config.ffn_dim, seed=seed + 11)
        self.ffn_out = Linear(config.ffn_dim, config.dim, seed=seed + 12)
        self.dropout = Dropout(config.dropout, seed=seed + 13)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        attended = self.attention(self.attention_norm(x), mask=mask)
        x = x + self.dropout(attended)
        transformed = self.ffn_out(self.ffn_in(self.ffn_norm(x)).gelu())
        return x + self.dropout(transformed)


class TransformerEncoder(Module):
    """Token + positional embeddings followed by a stack of encoder blocks."""

    def __init__(self, config: TransformerConfig) -> None:
        super().__init__()
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.dim, seed=config.seed, pad_id=0)
        self.position_embedding = Embedding(config.max_length, config.dim, seed=config.seed + 1)
        self.embedding_norm = LayerNorm(config.dim)
        self.embedding_dropout = Dropout(config.dropout, seed=config.seed + 2)
        self.blocks = [
            EncoderBlock(config, seed=config.seed + 100 * (i + 1))
            for i in range(config.num_layers)
        ]
        self.final_norm = LayerNorm(config.dim)

    def forward(self, ids: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
        """Encode a padded id batch into contextual vectors.

        Args:
            ids: Integer array ``(batch, length)``.
            mask: Attention mask ``(batch, length)``.

        Returns:
            Tensor of shape ``(batch, length, dim)``.
        """
        ids = np.asarray(ids, dtype=np.int64)
        batch, length = ids.shape
        if length > self.config.max_length:
            raise ValueError(
                f"sequence length {length} exceeds max_length {self.config.max_length}"
            )
        positions = np.broadcast_to(np.arange(length), (batch, length))
        x = self.token_embedding(ids) + self.position_embedding(positions)
        x = self.embedding_dropout(self.embedding_norm(x))
        for block in self.blocks:
            x = block(x, mask=mask)
        return self.final_norm(x)


class TransformerForSequenceClassification(Module):
    """Encoder + ``[CLS]``-pooled classification head."""

    def __init__(self, config: TransformerConfig, num_classes: int) -> None:
        super().__init__()
        if num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        self.encoder = TransformerEncoder(config)
        self.pooler = Linear(config.dim, config.dim, seed=config.seed + 7)
        self.classifier_dropout = Dropout(config.dropout, seed=config.seed + 8)
        self.classifier = Linear(config.dim, num_classes, seed=config.seed + 9)
        self.num_classes = num_classes

    def forward(self, ids: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
        """Return classification logits of shape ``(batch, num_classes)``."""
        hidden = self.encoder(ids, mask=mask)
        cls = hidden[:, 0, :]
        pooled = self.pooler(cls).tanh()
        return self.classifier(self.classifier_dropout(pooled))


class TransformerForMaskedLM(Module):
    """Encoder + masked-language-model head (tied projection back to vocab)."""

    def __init__(self, config: TransformerConfig) -> None:
        super().__init__()
        self.encoder = TransformerEncoder(config)
        self.transform = Linear(config.dim, config.dim, seed=config.seed + 21)
        self.transform_norm = LayerNorm(config.dim)
        self.vocab_projection = Linear(config.dim, config.vocab_size, seed=config.seed + 22)

    def forward(self, ids: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
        """Return per-position vocabulary logits ``(batch, length, vocab)``."""
        hidden = self.encoder(ids, mask=mask)
        transformed = self.transform_norm(self.transform(hidden).gelu())
        return self.vocab_projection(transformed)
