"""Saving and loading model parameters.

Parameters are stored as compressed ``.npz`` archives keyed by the module-tree
names produced by :meth:`repro.nn.module.Module.named_parameters`, so a model
rebuilt with the same configuration can round-trip its weights exactly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module


def save_model(model: Module, path: str | Path) -> Path:
    """Write *model*'s parameters to *path* (``.npz`` is appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    if not state:
        raise ValueError("model has no parameters to save")
    np.savez_compressed(path, **state)
    return path


def load_model(model: Module, path: str | Path, strict: bool = True) -> Module:
    """Load parameters saved by :func:`save_model` into *model* (in place).

    Raises:
        FileNotFoundError: When *path* does not exist.
        ValueError: When ``strict=True`` and the archive's parameter names do
            not match the model's (the error lists every missing and
            unexpected key), or when any shape disagrees — shape validation
            happens before assignment, so the model is never left with
            partially loaded weights.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no saved model at {path}")
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    try:
        model.load_state_dict(state, strict=strict)
    except ValueError as error:
        raise ValueError(
            f"cannot load {path} into {type(model).__name__} "
            f"(was it saved under a different configuration?): {error}"
        ) from None
    return model
