"""Standard neural-network layers built on the autograd Tensor."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


def _glorot(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Linear(Module):
    """Affine transformation ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: int = 0) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("feature dimensions must be positive")
        rng = np.random.default_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_glorot(in_features, out_features, rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(self, num_embeddings: int, dim: int, seed: int = 0, pad_id: int | None = None) -> None:
        super().__init__()
        if num_embeddings < 1 or dim < 1:
            raise ValueError("embedding dimensions must be positive")
        rng = np.random.default_rng(seed)
        table = rng.normal(0.0, 0.02, size=(num_embeddings, dim))
        if pad_id is not None:
            table[pad_id] = 0.0
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.pad_id = pad_id
        self.weight = Parameter(table, name="embedding")

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.num_embeddings:
            raise ValueError("token id out of range for the embedding table")
        return self.weight.embedding_lookup(ids)

    def load_pretrained(self, matrix: np.ndarray) -> None:
        """Initialise from a pretrained matrix (e.g. skip-gram embeddings)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != self.weight.data.shape:
            raise ValueError(
                f"pretrained matrix shape {matrix.shape} != {self.weight.data.shape}"
            )
        self.weight.data = matrix.copy()


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gain = Parameter(np.ones(dim), name="gain")
        self.shift = Parameter(np.zeros(dim), name="shift")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered * ((variance + self.eps) ** -0.5)
        return normalised * self.gain + self.shift


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, rate: float = 0.1, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return x.dropout(self.rate, self._rng, self.training)


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.steps = list(modules)

    def forward(self, x):
        for module in self.steps:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self.steps)

    def __getitem__(self, index: int) -> Module:
        return self.steps[index]
