"""Supervised training loop for the sequence classifiers.

Provides mini-batch training with validation after every epoch, gradient
clipping, an optional warmup/decay schedule, early stopping on validation
loss, and a :class:`TrainingHistory` record — the latter is what regenerates
the paper's training-loss and validation-loss figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.dataloader import BatchIterator
from repro.nn.losses import accuracy_from_logits, cross_entropy_logits
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.schedules import Schedule
from repro.nn.tensor import clip_gradients, no_grad


@dataclass
class TrainingHistory:
    """Per-epoch metrics collected during training.

    The train/validation loss curves reproduce the paper's ``loss_training``
    and ``loss_val`` figures.
    """

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    @property
    def best_epoch(self) -> int:
        """Epoch (0-based) with the lowest validation loss."""
        if not self.val_loss:
            return max(self.epochs - 1, 0)
        return int(np.argmin(self.val_loss))

    def as_dict(self) -> dict[str, list[float]]:
        """Plain-dict view (JSON-serialisable)."""
        return {
            "train_loss": list(self.train_loss),
            "train_accuracy": list(self.train_accuracy),
            "val_loss": list(self.val_loss),
            "val_accuracy": list(self.val_accuracy),
        }


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters of the supervised training loop."""

    epochs: int = 5
    batch_size: int = 32
    clip_norm: float = 1.0
    early_stopping_patience: int | None = None
    shuffle_seed: int = 0
    verbose: bool = False


class Trainer:
    """Trains a classification model that maps (ids, mask) batches to logits."""

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        schedule: Schedule | None = None,
        config: TrainerConfig | None = None,
        loss_fn: Callable = cross_entropy_logits,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.schedule = schedule
        self.config = config or TrainerConfig()
        self.loss_fn = loss_fn
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def fit(
        self,
        train_ids: np.ndarray,
        train_mask: np.ndarray,
        train_labels: np.ndarray,
        val_ids: np.ndarray | None = None,
        val_mask: np.ndarray | None = None,
        val_labels: np.ndarray | None = None,
    ) -> TrainingHistory:
        """Train for the configured number of epochs.

        Returns the accumulated :class:`TrainingHistory`.
        """
        cfg = self.config
        iterator = BatchIterator(
            train_ids,
            train_mask,
            labels=np.asarray(train_labels),
            batch_size=cfg.batch_size,
            seed=cfg.shuffle_seed,
        )
        best_val = np.inf
        best_state: dict[str, np.ndarray] | None = None
        epochs_without_improvement = 0

        for epoch in range(cfg.epochs):
            self.model.train()
            batch_losses: list[float] = []
            batch_accuracies: list[float] = []
            for ids, mask, labels in iterator:
                if self.schedule is not None:
                    self.schedule.step()
                self.model.zero_grad()
                logits = self.model(ids, mask=mask)
                loss = self.loss_fn(logits, labels)
                loss.backward()
                clip_gradients(self.model.parameters(), cfg.clip_norm)
                self.optimizer.step()
                batch_losses.append(loss.item())
                batch_accuracies.append(accuracy_from_logits(logits, labels))

            self.history.train_loss.append(float(np.mean(batch_losses)))
            self.history.train_accuracy.append(float(np.mean(batch_accuracies)))

            if val_ids is not None and val_labels is not None:
                val_loss, val_accuracy = self.evaluate(val_ids, val_mask, val_labels)
                self.history.val_loss.append(val_loss)
                self.history.val_accuracy.append(val_accuracy)
                if cfg.verbose:  # pragma: no cover - console output
                    print(
                        f"epoch {epoch + 1}/{cfg.epochs} "
                        f"train_loss={self.history.train_loss[-1]:.4f} "
                        f"val_loss={val_loss:.4f} val_acc={val_accuracy:.4f}"
                    )
                if val_loss < best_val - 1e-6:
                    best_val = val_loss
                    best_state = self.model.state_dict()
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if (
                        cfg.early_stopping_patience is not None
                        and epochs_without_improvement > cfg.early_stopping_patience
                    ):
                        break
            elif cfg.verbose:  # pragma: no cover - console output
                print(
                    f"epoch {epoch + 1}/{cfg.epochs} "
                    f"train_loss={self.history.train_loss[-1]:.4f}"
                )

        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self.history

    # ------------------------------------------------------------------
    def evaluate(
        self,
        ids: np.ndarray,
        mask: np.ndarray | None,
        labels: np.ndarray,
        batch_size: int | None = None,
    ) -> tuple[float, float]:
        """Mean loss and accuracy over a dataset (no gradient tracking)."""
        labels = np.asarray(labels)
        logits = self.predict_logits(ids, mask, batch_size=batch_size)
        with no_grad():
            loss = self.loss_fn(_to_tensor(logits), labels).item()
        accuracy = accuracy_from_logits(logits, labels)
        return float(loss), float(accuracy)

    def predict_logits(
        self,
        ids: np.ndarray,
        mask: np.ndarray | None,
        batch_size: int | None = None,
    ) -> np.ndarray:
        """Model logits for every row of *ids* (evaluation mode, batched)."""
        batch_size = batch_size or self.config.batch_size
        self.model.eval()
        outputs: list[np.ndarray] = []
        with no_grad():
            for start in range(0, ids.shape[0], batch_size):
                stop = start + batch_size
                batch_mask = mask[start:stop] if mask is not None else None
                logits = self.model(ids[start:stop], mask=batch_mask)
                outputs.append(logits.data.copy())
        self.model.train()
        return np.concatenate(outputs, axis=0)


def _to_tensor(array: np.ndarray):
    from repro.nn.tensor import Tensor

    return Tensor(array)
