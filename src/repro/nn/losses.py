"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def cross_entropy_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between raw *logits* and integer *targets*.

    Args:
        logits: Tensor of shape ``(n, n_classes)``.
        targets: Integer array of shape ``(n,)``.

    Returns:
        A scalar tensor.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("logits and targets disagree on the batch size")
    n = logits.shape[0]
    log_probs = _log_softmax(logits)
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def masked_cross_entropy_logits(
    logits: Tensor, targets: np.ndarray, mask: np.ndarray
) -> Tensor:
    """Cross-entropy averaged over positions where *mask* is non-zero.

    Used by the MLM pretraining objective, where only masked positions
    contribute to the loss.

    Args:
        logits: Tensor of shape ``(n, length, vocab)``.
        targets: Integer array of shape ``(n, length)``.
        mask: Float/bool array of shape ``(n, length)``; positions with zero
            mask are ignored.

    Returns:
        A scalar tensor (0.0 if the mask selects nothing).
    """
    targets = np.asarray(targets, dtype=np.int64)
    mask = np.asarray(mask, dtype=np.float64)
    if logits.ndim != 3:
        raise ValueError(f"logits must be 3-D, got shape {logits.shape}")
    n, length, vocab = logits.shape
    flat_logits = logits.reshape(n * length, vocab)
    log_probs = _log_softmax(flat_logits)
    picked = log_probs[np.arange(n * length), targets.reshape(-1)]
    flat_mask = mask.reshape(-1)
    denom = float(flat_mask.sum())
    if denom <= 0:
        return Tensor(0.0)
    return -(picked * Tensor(flat_mask)).sum() * (1.0 / denom)


def _log_softmax(logits: Tensor) -> Tensor:
    """Numerically stable log-softmax along the last axis."""
    # log_softmax(x) = x - logsumexp(x); implemented with Tensor ops so the
    # gradient is exact.
    max_detached = Tensor(logits.data.max(axis=-1, keepdims=True))
    shifted = logits - max_detached
    log_sum = shifted.exp().sum(axis=-1, keepdims=True).log()
    return shifted - log_sum


def accuracy_from_logits(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Fraction of rows whose argmax matches *targets*."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = data.argmax(axis=-1)
    return float(np.mean(predictions == np.asarray(targets)))
