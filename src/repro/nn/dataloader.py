"""Mini-batch iteration over padded id matrices."""

from __future__ import annotations

from typing import Iterator

import numpy as np


class BatchIterator:
    """Yields shuffled mini-batches of (ids, mask, labels) arrays.

    Args:
        ids: Integer id matrix of shape ``(n, length)``.
        mask: Attention mask of the same shape.
        labels: Integer labels of shape ``(n,)`` (optional; MLM pretraining
            iterates without labels).
        batch_size: Batch size.
        shuffle: Reshuffle every epoch.
        seed: Shuffle seed.
        drop_last: Drop the final incomplete batch.
    """

    def __init__(
        self,
        ids: np.ndarray,
        mask: np.ndarray,
        labels: np.ndarray | None = None,
        batch_size: int = 32,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        ids = np.asarray(ids)
        mask = np.asarray(mask)
        if ids.shape != mask.shape:
            raise ValueError(f"ids and mask shapes differ: {ids.shape} != {mask.shape}")
        if labels is not None:
            labels = np.asarray(labels)
            if labels.shape[0] != ids.shape[0]:
                raise ValueError("labels length does not match ids")
        self.ids = ids
        self.mask = mask
        self.labels = labels
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n_batches, remainder = divmod(self.ids.shape[0], self.batch_size)
        if remainder and not self.drop_last:
            n_batches += 1
        return n_batches

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray | None]]:
        n = self.ids.shape[0]
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if self.drop_last and len(batch_idx) < self.batch_size:
                break
            labels = self.labels[batch_idx] if self.labels is not None else None
            yield self.ids[batch_idx], self.mask[batch_idx], labels
