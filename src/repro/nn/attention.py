"""Multi-head self-attention (Vaswani et al., 2017), used by the transformers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class MultiHeadSelfAttention(Module):
    """Bidirectional multi-head self-attention over a padded batch.

    Args:
        dim: Model (embedding) dimension.
        num_heads: Number of attention heads; must divide ``dim``.
        dropout: Dropout on the attention weights.
        seed: Initialisation seed.
    """

    def __init__(self, dim: int, num_heads: int, dropout: float = 0.1, seed: int = 0) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim ({dim}) must be divisible by num_heads ({num_heads})")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, seed=seed)
        self.key = Linear(dim, dim, seed=seed + 1)
        self.value = Linear(dim, dim, seed=seed + 2)
        self.output = Linear(dim, dim, seed=seed + 3)
        self.attention_dropout = Dropout(dropout, seed=seed + 4)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Apply self-attention.

        Args:
            x: Tensor of shape ``(batch, length, dim)``.
            mask: Optional ``(batch, length)`` array; 0 marks padding
                positions which are excluded from attention.

        Returns:
            Tensor of shape ``(batch, length, dim)``.
        """
        batch, length, _ = x.shape
        heads, head_dim = self.num_heads, self.head_dim

        def split_heads(t: Tensor) -> Tensor:
            return t.reshape(batch, length, heads, head_dim).transpose(0, 2, 1, 3)

        q = split_heads(self.query(x))
        k = split_heads(self.key(x))
        v = split_heads(self.value(x))

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(head_dim))
        if mask is not None:
            # Broadcast the padding mask over heads and query positions.
            pad = (np.asarray(mask) == 0.0)[:, None, None, :]
            pad = np.broadcast_to(pad, scores.shape)
            scores = scores.masked_fill(pad, -1e9)
        weights = scores.softmax(axis=-1)
        weights = self.attention_dropout(weights)
        context = weights @ v  # (batch, heads, length, head_dim)
        context = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        return self.output(context)

    def attention_weights(self, x: Tensor, mask: np.ndarray | None = None) -> np.ndarray:
        """Return the attention weight matrix for inspection (no dropout)."""
        batch, length, _ = x.shape
        heads, head_dim = self.num_heads, self.head_dim

        def split_heads(t: Tensor) -> Tensor:
            return t.reshape(batch, length, heads, head_dim).transpose(0, 2, 1, 3)

        q = split_heads(self.query(x))
        k = split_heads(self.key(x))
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(head_dim))
        if mask is not None:
            pad = (np.asarray(mask) == 0.0)[:, None, None, :]
            pad = np.broadcast_to(pad, scores.shape)
            scores = scores.masked_fill(pad, -1e9)
        return scores.softmax(axis=-1).data
