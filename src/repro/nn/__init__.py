"""Minimal neural-network framework on NumPy.

The paper's sequential models (a 2-layer LSTM and BERT/RoBERTa-style
Transformer encoders) need a deep-learning stack; PyTorch is not available
offline, so this package provides a small but complete one:

* :mod:`repro.nn.tensor` — reverse-mode autograd over NumPy arrays;
* :mod:`repro.nn.module` / :mod:`repro.nn.layers` — parameter containers and
  the standard layers (Linear, Embedding, LayerNorm, Dropout);
* :mod:`repro.nn.rnn` — LSTM cell and stacked LSTM;
* :mod:`repro.nn.attention` / :mod:`repro.nn.transformer` — multi-head
  self-attention and the Transformer encoder used for BERT/RoBERTa;
* :mod:`repro.nn.mlm` — masked-language-model pretraining;
* :mod:`repro.nn.optim` / :mod:`repro.nn.schedules` — SGD/Adam/AdamW and
  warmup schedules;
* :mod:`repro.nn.trainer` — mini-batch training loop with history and early
  stopping.
"""

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.dataloader import BatchIterator
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Sequential
from repro.nn.losses import cross_entropy_logits, masked_cross_entropy_logits
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, AdamW, Optimizer
from repro.nn.rnn import LSTM, LSTMCell
from repro.nn.schedules import ConstantSchedule, LinearWarmupDecay
from repro.nn.tensor import Tensor, no_grad
from repro.nn.trainer import Trainer, TrainingHistory
from repro.nn.transformer import TransformerConfig, TransformerEncoder

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "LSTMCell",
    "LSTM",
    "MultiHeadSelfAttention",
    "TransformerConfig",
    "TransformerEncoder",
    "cross_entropy_logits",
    "masked_cross_entropy_logits",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "ConstantSchedule",
    "LinearWarmupDecay",
    "Trainer",
    "TrainingHistory",
    "BatchIterator",
]
