"""Reverse-mode automatic differentiation over NumPy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied to
it; :meth:`Tensor.backward` walks the recorded graph in reverse topological
order accumulating gradients.  The op set covers exactly what the LSTM and
Transformer models need: elementwise arithmetic with broadcasting, matmul,
reductions, indexing/embedding lookup, softmax, common activations, dropout
masks and concatenation.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

# Thread-local so that concurrently trained models (the experiment runner's
# n_jobs mode) cannot disable each other's graph construction: one thread
# evaluating under no_grad() must not affect another thread's backward pass.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (for evaluation)."""
    previous = grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def grad_enabled() -> bool:
    """Whether operations currently record the autograd graph (per thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(gradient: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum *gradient* down to *shape* (reverse of NumPy broadcasting)."""
    if gradient.shape == shape:
        return gradient
    # Sum over leading dimensions added by broadcasting.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum over dimensions that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


class Tensor:
    """A NumPy array with optional gradient tracking.

    Attributes:
        data: The underlying ``float64`` array.
        grad: Accumulated gradient (same shape as ``data``) after backward.
        requires_grad: Whether gradients flow into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # make ndarray defer to Tensor in mixed ops

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad and grad_enabled()
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(
        *shape: int, std: float = 1.0, seed: int | None = None, requires_grad: bool = False
    ) -> "Tensor":
        rng = np.random.default_rng(seed)
        return Tensor(rng.normal(0.0, std, size=shape), requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # graph bookkeeping
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad}{label})"

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """The single scalar value of a 0-d/1-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def _accumulate(self, gradient: np.ndarray) -> None:
        if self.grad is None:
            self.grad = gradient.copy()
        else:
            self.grad += gradient

    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Args:
            gradient: Seed gradient; defaults to 1.0 for scalar tensors.
        """
        if not self.requires_grad and not self._parents:
            raise RuntimeError("backward() called on a tensor with no graph attached")
        if gradient is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar tensor")
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=np.float64)

        # Topological order over the recorded graph.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): gradient}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None:
                    continue
                existing = grads.get(id(parent))
                grads[id(parent)] = (
                    parent_grad if existing is None else existing + parent_grad
                )

    # ------------------------------------------------------------------
    # op plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = grad_enabled() and any(
            p.requires_grad or p._parents for p in parents
        )
        if not requires:
            return Tensor(data)
        out = Tensor(data, requires_grad=False, _parents=parents, _backward=backward)
        # The output itself doesn't own a grad unless a leaf; mark that it
        # participates in the graph via _parents.
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data + other.data

        def backward(gradient: np.ndarray):
            return (
                _unbroadcast(gradient, self.data.shape),
                _unbroadcast(gradient, other.data.shape),
            )

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(gradient: np.ndarray):
            return (-gradient,)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data - other.data

        def backward(gradient: np.ndarray):
            return (
                _unbroadcast(gradient, self.data.shape),
                _unbroadcast(-gradient, other.data.shape),
            )

        return self._make(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data * other.data

        def backward(gradient: np.ndarray):
            return (
                _unbroadcast(gradient * other.data, self.data.shape),
                _unbroadcast(gradient * self.data, other.data.shape),
            )

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data / other.data

        def backward(gradient: np.ndarray):
            return (
                _unbroadcast(gradient / other.data, self.data.shape),
                _unbroadcast(-gradient * self.data / (other.data**2), other.data.shape),
            )

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(gradient: np.ndarray):
            return (gradient * exponent * self.data ** (exponent - 1),)

        return self._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data @ other.data

        def backward(gradient: np.ndarray):
            a, b = self.data, other.data
            if a.ndim == 2 and b.ndim == 2:
                return gradient @ b.T, a.T @ gradient
            # Batched matmul: contract over the batch dimensions.
            grad_a = gradient @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ gradient
            return (
                _unbroadcast(grad_a, a.shape),
                _unbroadcast(grad_b, b.shape),
            )

        return self._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # reductions and shaping
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(gradient: np.ndarray):
            grad = gradient
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            return (np.broadcast_to(grad, self.data.shape).copy(),)

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        data = self.data.reshape(*shape)

        def backward(gradient: np.ndarray):
            return (gradient.reshape(self.data.shape),)

        return self._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(gradient: np.ndarray):
            return (gradient.transpose(inverse),)

        return self._make(data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        data = self.data[key]

        def backward(gradient: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, key, gradient)
            return (full,)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(gradient: np.ndarray):
            return (gradient * data,)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(np.maximum(self.data, 1e-12))

        def backward(gradient: np.ndarray):
            return (gradient / np.maximum(self.data, 1e-12),)

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(gradient: np.ndarray):
            return (gradient * (1.0 - data**2),)

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -35.0, 35.0)))

        def backward(gradient: np.ndarray):
            return (gradient * data * (1.0 - data),)

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(gradient: np.ndarray):
            return (gradient * mask,)

        return self._make(self.data * mask, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation, as in BERT)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        data = 0.5 * x * (1.0 + tanh_inner)

        def backward(gradient: np.ndarray):
            sech2 = 1.0 - tanh_inner**2
            d_inner = c * (1.0 + 3 * 0.044715 * x**2)
            derivative = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
            return (gradient * derivative,)

        return self._make(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(gradient: np.ndarray):
            dot = (gradient * data).sum(axis=axis, keepdims=True)
            return (data * (gradient - dot),)

        return self._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    # ------------------------------------------------------------------
    # structural ops used by the models
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        splits = np.cumsum(sizes)[:-1]

        def backward(gradient: np.ndarray):
            return tuple(np.split(gradient, splits, axis=axis))

        probe = tensors[0]
        return probe._make(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(gradient: np.ndarray):
            pieces = np.split(gradient, len(tensors), axis=axis)
            return tuple(np.squeeze(piece, axis=axis) for piece in pieces)

        probe = tensors[0]
        return probe._make(data, tuple(tensors), backward)

    def embedding_lookup(self, indices: np.ndarray) -> "Tensor":
        """Row lookup ``self[indices]`` for an embedding matrix.

        *indices* is an integer array of any shape; the result has shape
        ``indices.shape + (embedding_dim,)``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        data = self.data[indices]

        def backward(gradient: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, indices.reshape(-1), gradient.reshape(-1, self.data.shape[-1]))
            return (full,)

        return self._make(data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where *mask* is true with *value* (no grad through them)."""
        mask = np.asarray(mask, dtype=bool)
        data = np.where(mask, value, self.data)

        def backward(gradient: np.ndarray):
            return (np.where(mask, 0.0, gradient),)

        return self._make(data, (self,), backward)

    def dropout(self, rate: float, rng: np.random.Generator, training: bool) -> "Tensor":
        """Inverted dropout; identity when not training or rate == 0."""
        if not training or rate <= 0.0:
            return self
        keep = 1.0 - rate
        mask = (rng.random(self.data.shape) < keep) / keep

        def backward(gradient: np.ndarray):
            return (gradient * mask,)

        return self._make(self.data * mask, (self,), backward)


def parameters_norm(parameters: Iterable[Tensor]) -> float:
    """Global L2 norm of the gradients of *parameters* (0 for missing grads)."""
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float(np.sum(parameter.grad**2))
    return float(np.sqrt(total))


def clip_gradients(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Clip gradients to a global L2 norm of *max_norm*; returns the pre-clip norm."""
    parameters = list(parameters)
    norm = parameters_norm(parameters)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for parameter in parameters:
            if parameter.grad is not None:
                parameter.grad *= scale
    return norm
