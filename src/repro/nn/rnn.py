"""LSTM (Section V-E of the paper).

The paper's recurrent baseline is "a simple 2-layer LSTM".  This module
implements the LSTM cell with the standard input/forget/output gates plus a
stacked multi-layer wrapper that consumes padded batches and returns either
the full hidden-state sequence or the masked final state for classification.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dropout
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class LSTMCell(Module):
    """A single LSTM cell.

    Gates are computed jointly: ``[i, f, g, o] = x W_x + h W_h + b`` with the
    forget-gate bias initialised to 1.0, the standard trick that keeps memory
    flowing early in training.
    """

    def __init__(self, input_dim: int, hidden_dim: int, seed: int = 0) -> None:
        super().__init__()
        if input_dim < 1 or hidden_dim < 1:
            raise ValueError("dimensions must be positive")
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(hidden_dim)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight_x = Parameter(
            rng.uniform(-scale, scale, size=(input_dim, 4 * hidden_dim)), name="weight_x"
        )
        self.weight_h = Parameter(
            rng.uniform(-scale, scale, size=(hidden_dim, 4 * hidden_dim)), name="weight_h"
        )
        bias = np.zeros(4 * hidden_dim)
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget gate bias
        self.bias = Parameter(bias, name="bias")

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """One time step.

        Args:
            x: Input of shape ``(batch, input_dim)``.
            h: Previous hidden state ``(batch, hidden_dim)``.
            c: Previous cell state ``(batch, hidden_dim)``.

        Returns:
            ``(h_next, c_next)``.
        """
        gates = x @ self.weight_x + h @ self.weight_h + self.bias
        d = self.hidden_dim
        i_gate = gates[:, 0:d].sigmoid()
        f_gate = gates[:, d : 2 * d].sigmoid()
        g_gate = gates[:, 2 * d : 3 * d].tanh()
        o_gate = gates[:, 3 * d : 4 * d].sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """Stacked (multi-layer) LSTM over padded batches.

    Args:
        input_dim: Dimensionality of the input vectors.
        hidden_dim: Hidden state size of every layer.
        num_layers: Number of stacked layers (the paper uses 2).
        dropout: Dropout applied between layers (not after the last).
        seed: Initialisation seed.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int = 2,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.cells = [
            LSTMCell(input_dim if layer == 0 else hidden_dim, hidden_dim, seed=seed + layer)
            for layer in range(num_layers)
        ]
        self.dropouts = [
            Dropout(dropout, seed=seed + 101 + layer) for layer in range(max(num_layers - 1, 0))
        ]

    def forward(self, inputs: Tensor, mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        """Run the stack over a padded batch.

        Args:
            inputs: Tensor of shape ``(batch, length, input_dim)``.
            mask: Optional float array ``(batch, length)``; 1 over real
                tokens, 0 over padding.  Hidden/cell states freeze on padded
                positions so the "final" state corresponds to the last real
                token.

        Returns:
            ``(outputs, final_hidden)`` where ``outputs`` has shape
            ``(batch, length, hidden_dim)`` (top layer) and ``final_hidden``
            has shape ``(batch, hidden_dim)``.
        """
        batch, length, _ = inputs.shape
        layer_input = inputs
        final_hidden: Tensor | None = None
        outputs: Tensor | None = None

        for layer_index, cell in enumerate(self.cells):
            h = Tensor(np.zeros((batch, self.hidden_dim)))
            c = Tensor(np.zeros((batch, self.hidden_dim)))
            step_outputs: list[Tensor] = []
            for t in range(length):
                x_t = layer_input[:, t, :]
                h_new, c_new = cell(x_t, h, c)
                if mask is not None:
                    m = Tensor(mask[:, t : t + 1])
                    h = h_new * m + h * (1.0 - m)
                    c = c_new * m + c * (1.0 - m)
                else:
                    h, c = h_new, c_new
                step_outputs.append(h)
            outputs = Tensor.stack(step_outputs, axis=1)
            final_hidden = h
            if layer_index < len(self.cells) - 1:
                outputs = self.dropouts[layer_index](outputs)
            layer_input = outputs

        assert outputs is not None and final_hidden is not None
        return outputs, final_hidden
