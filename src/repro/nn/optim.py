"""Optimizers: SGD (with momentum), Adam and AdamW."""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer(abc.ABC):
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, parameters: Sequence[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.step_count = 0

    @abc.abstractmethod
    def _update(self, index: int, parameter: Tensor, gradient: np.ndarray) -> None:
        """Apply one update to *parameter* given its *gradient*."""

    def step(self) -> None:
        """Update every parameter from its accumulated gradient."""
        self.step_count += 1
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            self._update(index, parameter, parameter.grad)

    def zero_grad(self) -> None:
        """Clear gradients of all tracked parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def set_lr(self, lr: float) -> None:
        """Set the current learning rate (used by schedules)."""
        self.lr = lr


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _update(self, index: int, parameter: Tensor, gradient: np.ndarray) -> None:
        if self.weight_decay:
            gradient = gradient + self.weight_decay * parameter.data
        if self.momentum:
            self._velocity[index] = self.momentum * self._velocity[index] + gradient
            gradient = self._velocity[index]
        parameter.data -= self.lr * gradient


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _update(self, index: int, parameter: Tensor, gradient: np.ndarray) -> None:
        beta1, beta2 = self.betas
        if self.weight_decay:
            gradient = gradient + self.weight_decay * parameter.data
        self._m[index] = beta1 * self._m[index] + (1 - beta1) * gradient
        self._v[index] = beta2 * self._v[index] + (1 - beta2) * gradient**2
        m_hat = self._m[index] / (1 - beta1**self.step_count)
        v_hat = self._v[index] / (1 - beta2**self.step_count)
        parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (the optimizer BERT/RoBERTa use)."""

    def _update(self, index: int, parameter: Tensor, gradient: np.ndarray) -> None:
        beta1, beta2 = self.betas
        self._m[index] = beta1 * self._m[index] + (1 - beta1) * gradient
        self._v[index] = beta2 * self._v[index] + (1 - beta2) * gradient**2
        m_hat = self._m[index] / (1 - beta1**self.step_count)
        v_hat = self._v[index] / (1 - beta2**self.step_count)
        parameter.data -= self.lr * (
            m_hat / (np.sqrt(v_hat) + self.eps) + self.weight_decay * parameter.data
        )
