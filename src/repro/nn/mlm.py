"""Masked-language-model pretraining (the BERT/RoBERTa objective).

BERT masks 15 % of the tokens once, statically, when the data is prepared;
RoBERTa applies *dynamic masking*, drawing a fresh mask every epoch, and
pretrains for more steps.  Both behaviours are supported here and are exactly
what distinguishes the paper's two transformer rows (Section V-F).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.losses import masked_cross_entropy_logits
from repro.nn.optim import AdamW
from repro.nn.schedules import LinearWarmupDecay
from repro.nn.tensor import clip_gradients
from repro.nn.transformer import TransformerForMaskedLM
from repro.text.vocabulary import Vocabulary


@dataclass(frozen=True)
class MLMConfig:
    """Hyper-parameters of the MLM pretraining loop.

    Attributes:
        mask_probability: Fraction of (non-special) tokens selected per
            sequence.
        mask_token_rate: Of the selected tokens, fraction replaced by
            ``[MASK]`` (the rest are replaced by a random token or kept, per
            the 80/10/10 BERT recipe).
        random_token_rate: Fraction of selected tokens replaced by a random
            vocabulary token.
        dynamic: Re-draw the mask every epoch (RoBERTa) instead of once
            (BERT).
        epochs: Pretraining epochs over the corpus.
        batch_size: Pretraining batch size.
        peak_lr: Peak learning rate of the warmup/decay schedule.
        warmup_fraction: Fraction of total steps used for warmup.
        weight_decay: AdamW weight decay.
        clip_norm: Gradient clipping norm.
        seed: PRNG seed.
    """

    mask_probability: float = 0.15
    mask_token_rate: float = 0.8
    random_token_rate: float = 0.1
    dynamic: bool = True
    epochs: int = 2
    batch_size: int = 32
    peak_lr: float = 5e-3
    warmup_fraction: float = 0.1
    weight_decay: float = 0.01
    clip_norm: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.mask_probability < 1.0:
            raise ValueError("mask_probability must be in (0, 1)")
        if self.mask_token_rate + self.random_token_rate > 1.0:
            raise ValueError("mask_token_rate + random_token_rate must be <= 1")
        if self.epochs < 0:
            raise ValueError("epochs must be >= 0")


def apply_mlm_masking(
    ids: np.ndarray,
    attention_mask: np.ndarray,
    vocabulary: Vocabulary,
    config: MLMConfig,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Produce masked inputs and MLM targets for a batch.

    Returns:
        ``(masked_ids, targets, loss_mask)`` — ``targets`` holds the original
        token ids, ``loss_mask`` is 1.0 on the positions that were selected
        for prediction.
    """
    ids = np.asarray(ids, dtype=np.int64)
    attention_mask = np.asarray(attention_mask, dtype=np.float64)
    masked = ids.copy()
    special = np.isin(ids, np.asarray(vocabulary.special_ids))
    eligible = (attention_mask > 0) & ~special

    selection = (rng.random(ids.shape) < config.mask_probability) & eligible
    # Guarantee at least one masked position per sequence with any eligible
    # token, so every example contributes to the loss.
    for row in range(ids.shape[0]):
        if eligible[row].any() and not selection[row].any():
            candidates = np.flatnonzero(eligible[row])
            selection[row, rng.choice(candidates)] = True

    replace_roll = rng.random(ids.shape)
    mask_positions = selection & (replace_roll < config.mask_token_rate)
    random_positions = selection & (
        (replace_roll >= config.mask_token_rate)
        & (replace_roll < config.mask_token_rate + config.random_token_rate)
    )
    masked[mask_positions] = vocabulary.mask_id
    if random_positions.any():
        n_special = len(vocabulary.special_ids)
        random_ids = rng.integers(n_special, len(vocabulary), size=int(random_positions.sum()))
        masked[random_positions] = random_ids

    loss_mask = selection.astype(np.float64)
    return masked, ids, loss_mask


@dataclass
class MLMPretrainingResult:
    """Loss history of an MLM pretraining run."""

    losses_per_epoch: list[float]
    total_steps: int

    @property
    def final_loss(self) -> float:
        return self.losses_per_epoch[-1] if self.losses_per_epoch else float("nan")


def pretrain_mlm(
    model: TransformerForMaskedLM,
    ids: np.ndarray,
    attention_mask: np.ndarray,
    vocabulary: Vocabulary,
    config: MLMConfig | None = None,
) -> MLMPretrainingResult:
    """Pretrain *model* on the corpus with the MLM objective.

    Args:
        model: The masked-LM model to train in place.
        ids: Padded id matrix of the pretraining corpus.
        attention_mask: Matching attention mask.
        vocabulary: Vocabulary providing the special-token ids.
        config: Pretraining hyper-parameters.

    Returns:
        The per-epoch loss history.
    """
    config = config or MLMConfig()
    rng = np.random.default_rng(config.seed)
    model.train()

    if config.epochs == 0:
        return MLMPretrainingResult(losses_per_epoch=[], total_steps=0)

    ids = np.asarray(ids, dtype=np.int64)
    attention_mask = np.asarray(attention_mask, dtype=np.float64)
    n = ids.shape[0]
    n_batches = int(np.ceil(n / config.batch_size))
    total_steps = max(1, n_batches * config.epochs)

    optimizer = AdamW(model.parameters(), lr=config.peak_lr, weight_decay=config.weight_decay)
    schedule = LinearWarmupDecay(
        optimizer,
        peak_lr=config.peak_lr,
        warmup_steps=max(1, int(total_steps * config.warmup_fraction)),
        total_steps=total_steps,
    )

    # Static masking (BERT): one mask drawn up front and reused every epoch.
    # Dynamic masking (RoBERTa): a fresh mask per epoch.
    if not config.dynamic:
        static = apply_mlm_masking(ids, attention_mask, vocabulary, config, rng)

    losses: list[float] = []
    steps = 0
    for _ in range(config.epochs):
        if config.dynamic:
            masked_ids, targets, loss_mask = apply_mlm_masking(
                ids, attention_mask, vocabulary, config, rng
            )
        else:
            masked_ids, targets, loss_mask = static
        order = rng.permutation(n)
        epoch_losses: list[float] = []
        for start in range(0, n, config.batch_size):
            rows = order[start : start + config.batch_size]
            schedule.step()
            model.zero_grad()
            logits = model(masked_ids[rows], mask=attention_mask[rows])
            loss = masked_cross_entropy_logits(logits, targets[rows], loss_mask[rows])
            loss.backward()
            clip_gradients(model.parameters(), config.clip_norm)
            optimizer.step()
            epoch_losses.append(loss.item())
            steps += 1
        losses.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
    return MLMPretrainingResult(losses_per_epoch=losses, total_steps=steps)
