"""Module/parameter containers, mirroring the familiar torch.nn.Module API."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for every layer and model.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` and :meth:`named_parameters` walk the tree.
    ``training`` toggles dropout behaviour via :meth:`train` / :meth:`eval`.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs for the whole module tree."""
        for attr_name, attr in vars(self).items():
            if attr_name.startswith("_modules_list"):
                continue
            full_name = f"{prefix}{attr_name}"
            if isinstance(attr, Parameter):
                yield full_name, attr
            elif isinstance(attr, Module):
                yield from attr.named_parameters(prefix=f"{full_name}.")
            elif isinstance(attr, (list, tuple)):
                for index, element in enumerate(attr):
                    if isinstance(element, Parameter):
                        yield f"{full_name}.{index}", element
                    elif isinstance(element, Module):
                        yield from element.named_parameters(prefix=f"{full_name}.{index}.")

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of the module tree."""
        return [parameter for _, parameter in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every submodule."""
        yield self
        for attr in vars(self).values():
            if isinstance(attr, Module):
                yield from attr.modules()
            elif isinstance(attr, (list, tuple)):
                for element in attr:
                    if isinstance(element, Module):
                        yield from element.modules()

    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(parameter.data.size for parameter in self.parameters()))

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by its tree name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values saved by :meth:`state_dict`.

        With ``strict=True`` the key sets must match exactly; a mismatch
        raises listing every missing and unexpected key.  Shapes are always
        validated for *all* keys before any parameter is assigned, so a
        failed load never leaves the module partially overwritten.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if strict and (missing or unexpected):
            raise ValueError(
                "state dict key mismatch: "
                f"missing keys {missing or 'none'}, unexpected keys {unexpected or 'none'} "
                "(pass strict=False to load the intersection)"
            )
        prepared: dict[str, np.ndarray] = {}
        mismatched: list[str] = []
        for name, parameter in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                mismatched.append(f"{name}: saved {value.shape} != model {parameter.data.shape}")
            else:
                prepared[name] = value
        if mismatched:
            raise ValueError(
                "state dict shape mismatch, no parameters were modified: "
                + "; ".join(mismatched)
            )
        for name, value in prepared.items():
            own[name].data = value.copy()
