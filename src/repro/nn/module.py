"""Module/parameter containers, mirroring the familiar torch.nn.Module API."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for every layer and model.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` and :meth:`named_parameters` walk the tree.
    ``training`` toggles dropout behaviour via :meth:`train` / :meth:`eval`.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs for the whole module tree."""
        for attr_name, attr in vars(self).items():
            if attr_name.startswith("_modules_list"):
                continue
            full_name = f"{prefix}{attr_name}"
            if isinstance(attr, Parameter):
                yield full_name, attr
            elif isinstance(attr, Module):
                yield from attr.named_parameters(prefix=f"{full_name}.")
            elif isinstance(attr, (list, tuple)):
                for index, element in enumerate(attr):
                    if isinstance(element, Parameter):
                        yield f"{full_name}.{index}", element
                    elif isinstance(element, Module):
                        yield from element.named_parameters(prefix=f"{full_name}.{index}.")

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of the module tree."""
        return [parameter for _, parameter in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every submodule."""
        yield self
        for attr in vars(self).values():
            if isinstance(attr, Module):
                yield from attr.modules()
            elif isinstance(attr, (list, tuple)):
                for element in attr:
                    if isinstance(element, Module):
                        yield from element.modules()

    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(parameter.data.size for parameter in self.parameters()))

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by its tree name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values saved by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} != {parameter.data.shape}"
                )
            parameter.data = value.copy()
