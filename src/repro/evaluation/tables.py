"""Regeneration of Tables I-IV of the paper.

Each function returns plain data structures (lists of dicts) so they can be
asserted on by the benchmarks and rendered with
:func:`repro.evaluation.reports.format_table`.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.results import ExperimentResult
from repro.data.cuisines import CUISINE_RECIPE_COUNTS
from repro.data.recipedb import RecipeDB
from repro.data.statistics import (
    PAPER_TABLE_III_HIGH,
    PAPER_TABLE_III_LOW,
    compute_corpus_statistics,
)
from repro.models.registry import DISPLAY_NAMES, PAPER_TABLE_IV


def table_i(corpus: RecipeDB, per_continent: int = 1, max_items: int = 12) -> list[dict]:
    """Table I — sample rows of the corpus, one (or more) per continent.

    Returns rows with the paper's columns: Recipe ID, Continent, Cuisine and a
    truncated view of the recipe sequence.
    """
    rows: list[dict] = []
    seen: dict[str, int] = {}
    for recipe in corpus:
        taken = seen.get(recipe.continent, 0)
        if taken >= per_continent:
            continue
        seen[recipe.continent] = taken + 1
        sequence = list(recipe.sequence[:max_items])
        if len(recipe.sequence) > max_items:
            sequence.append("...")
        rows.append(
            {
                "Recipe ID": recipe.recipe_id,
                "Continent": recipe.continent,
                "Cuisine": recipe.cuisine,
                "Recipe": sequence,
            }
        )
    rows.sort(key=lambda row: row["Continent"])
    return rows


def table_ii(corpus: RecipeDB) -> list[dict]:
    """Table II — recipes per cuisine, side by side with the paper's counts."""
    counts = corpus.cuisine_counts()
    rows = []
    for cuisine in sorted(CUISINE_RECIPE_COUNTS):
        rows.append(
            {
                "Cuisine": cuisine,
                "Number of Recipes": counts.get(cuisine, 0),
                "Paper Count": CUISINE_RECIPE_COUNTS[cuisine],
            }
        )
    return rows


def table_iii(corpus: RecipeDB) -> list[dict]:
    """Table III — cumulative feature-frequency distribution.

    Each row pairs a ">N"/"<N" threshold with the measured number of features
    and the value the paper reports for the full-scale corpus.
    """
    statistics = compute_corpus_statistics(corpus)
    rows: list[dict] = []
    for threshold, count in sorted(statistics.high_frequency_table.items()):
        rows.append(
            {
                "Threshold": f">{threshold}",
                "Number of Features": count,
                "Paper Value": PAPER_TABLE_III_HIGH.get(threshold),
            }
        )
    for threshold, count in sorted(statistics.low_frequency_table.items()):
        rows.append(
            {
                "Threshold": f"<{threshold}",
                "Number of Features": count,
                "Paper Value": PAPER_TABLE_III_LOW.get(threshold),
            }
        )
    return rows


def table_iv(result: ExperimentResult, include_paper: bool = True) -> list[dict]:
    """Table IV — the performance metrics of every trained model.

    Args:
        result: An experiment result covering any subset of the Table IV
            models.
        include_paper: Add the paper-reported values next to the measured
            ones for direct comparison.

    Returns:
        One row per metric per model (long format), plus a wide summary under
        the ``"_wide"`` key of each row being unnecessary — the wide format is
        produced by :func:`table_iv_wide`.
    """
    rows: list[dict] = []
    for name, model_result in result.model_results.items():
        measured = model_result.metrics.table_row()
        paper = PAPER_TABLE_IV.get(name, {}) if include_paper else {}
        row = {"Model": DISPLAY_NAMES.get(name, name)}
        for metric, value in measured.items():
            row[metric] = value
            if include_paper and metric in paper:
                row[f"Paper {metric}"] = paper[metric]
        rows.append(row)
    return rows


def table_iv_wide(result: ExperimentResult) -> dict[str, Mapping[str, float]]:
    """Table IV in the paper's wide layout: metric -> {model -> value}."""
    metrics = ("Accuracy", "Loss", "Precision", "Recall", "F1 Score")
    wide: dict[str, dict[str, float]] = {metric: {} for metric in metrics}
    for name, model_result in result.model_results.items():
        row = model_result.metrics.table_row()
        display = DISPLAY_NAMES.get(name, name)
        for metric in metrics:
            wide[metric][display] = row[metric]
    return wide
