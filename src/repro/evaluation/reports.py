"""Plain-text rendering of tables and figures.

The benchmark harness prints the regenerated tables with these helpers so the
console output can be compared line by line with the paper.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(rows: Sequence[Mapping], title: str | None = None, float_digits: int = 2) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def render(value) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        if isinstance(value, (list, tuple)):
            return "[" + ", ".join(str(v) for v in value) + "]"
        if value is None:
            return "-"
        return str(value)

    rendered = [[render(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered)) for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def render_ascii_chart(
    series: Mapping[str, float] | Mapping[str, Sequence[float]],
    title: str | None = None,
    width: int = 40,
) -> str:
    """Render a bar chart (scalar series) or sparkline chart (list series)."""
    lines: list[str] = []
    if title:
        lines.append(title)
    if not series:
        lines.append("(no data)")
        return "\n".join(lines)

    first_value = next(iter(series.values()))
    if isinstance(first_value, (int, float)):
        numeric: Mapping[str, float] = series  # type: ignore[assignment]
        maximum = max(abs(float(v)) for v in numeric.values()) or 1.0
        label_width = max(len(str(key)) for key in numeric)
        for key, value in numeric.items():
            bar = "#" * max(1, int(round(abs(float(value)) / maximum * width)))
            lines.append(f"{str(key).ljust(label_width)} | {bar} {float(value):.4f}")
        return "\n".join(lines)

    label_width = max(len(str(key)) for key in series)
    for key, values in series.items():  # type: ignore[assignment]
        values = [float(v) for v in values]
        spark = _sparkline(values)
        tail = f"{values[-1]:.4f}" if values else "-"
        lines.append(f"{str(key).ljust(label_width)} | {spark} (last={tail})")
    return "\n".join(lines)


def _sparkline(values: Iterable[float]) -> str:
    values = list(values)
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(blocks[int((value - low) / span * (len(blocks) - 1))] for value in values)


def comparison_summary(measured: Mapping[str, float], paper: Mapping[str, float]) -> str:
    """Two-column "measured vs paper" summary used by EXPERIMENTS.md."""
    keys = list(paper) + [key for key in measured if key not in paper]
    rows = [
        {
            "Metric": key,
            "Measured": measured.get(key),
            "Paper": paper.get(key),
        }
        for key in keys
    ]
    return format_table(rows)
