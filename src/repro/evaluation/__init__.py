"""Regeneration of the **paper's** tables and figures from library objects.

Not to be confused with :mod:`repro.eval`, the *online* quality gate that
decides whether a candidate deployment may be promoted (golden sets, layered
candidate-vs-baseline evaluation, statistical canary verdicts).  This package
is offline reporting: it reproduces Tables I–IV and the figures of
conf_icde_SharmaUB20 from trained models and corpora.
"""

from repro.evaluation.figures import (
    feature_frequency_histogram,
    loss_curves,
    normalized_accuracy,
)
from repro.evaluation.reports import format_table, render_ascii_chart
from repro.evaluation.tables import table_i, table_ii, table_iii, table_iv

__all__ = [
    "table_i",
    "table_ii",
    "table_iii",
    "table_iv",
    "normalized_accuracy",
    "loss_curves",
    "feature_frequency_histogram",
    "format_table",
    "render_ascii_chart",
]
