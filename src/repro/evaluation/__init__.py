"""Regeneration of the paper's tables and figures from library objects."""

from repro.evaluation.figures import (
    feature_frequency_histogram,
    loss_curves,
    normalized_accuracy,
)
from repro.evaluation.reports import format_table, render_ascii_chart
from repro.evaluation.tables import table_i, table_ii, table_iii, table_iv

__all__ = [
    "table_i",
    "table_ii",
    "table_iii",
    "table_iv",
    "normalized_accuracy",
    "loss_curves",
    "feature_frequency_histogram",
    "format_table",
    "render_ascii_chart",
]
