"""Regeneration of the paper's figures as data series.

The arXiv source ships several figures (normalized model accuracy, training
and validation loss curves, feature-frequency distributions, and architecture
flow diagrams).  Matplotlib is not assumed to be available offline, so each
figure is reproduced as the underlying data series plus an ASCII rendering via
:func:`repro.evaluation.reports.render_ascii_chart`; the benchmark suite
asserts on the data series.
"""

from __future__ import annotations

from collections import Counter

from repro.core.results import ExperimentResult
from repro.data.recipedb import RecipeDB
from repro.data.schema import TokenKind
from repro.models.registry import DISPLAY_NAMES, PAPER_TABLE_IV


def normalized_accuracy(
    result: ExperimentResult, include_paper: bool = True
) -> dict[str, dict[str, float]]:
    """Figure "Normalized_Model_Accuracy" — accuracy of each model divided by
    the best model's accuracy.

    Returns:
        ``{"measured": {model: value}, "paper": {model: value}}`` (the paper
        series is computed from Table IV when requested).
    """
    measured_raw = {
        DISPLAY_NAMES.get(name, name): model_result.metrics.accuracy
        for name, model_result in result.model_results.items()
    }
    series: dict[str, dict[str, float]] = {"measured": _normalize(measured_raw)}
    if include_paper:
        paper_raw = {
            DISPLAY_NAMES[name]: values["Accuracy"]
            for name, values in PAPER_TABLE_IV.items()
            if name in result.model_results
        }
        series["paper"] = _normalize(paper_raw)
    return series


def _normalize(values: dict[str, float]) -> dict[str, float]:
    if not values:
        return {}
    best = max(values.values())
    if best <= 0:
        return {key: 0.0 for key in values}
    return {key: value / best for key, value in values.items()}


def loss_curves(result: ExperimentResult, split: str = "train") -> dict[str, list[float]]:
    """Figures "loss_training" / "loss_val" — per-epoch loss of the neural models.

    Args:
        result: Experiment result containing neural models with histories.
        split: ``"train"`` or ``"val"``.

    Returns:
        Mapping from display model name to the loss series (empty for models
        without a history, i.e. the statistical ones).
    """
    if split not in ("train", "val"):
        raise ValueError(f"split must be 'train' or 'val', got {split!r}")
    key = "train_loss" if split == "train" else "val_loss"
    curves: dict[str, list[float]] = {}
    for name, model_result in result.model_results.items():
        history = model_result.history or {}
        series = history.get(key, [])
        if series:
            curves[DISPLAY_NAMES.get(name, name)] = list(series)
    return curves


def accuracy_curves(result: ExperimentResult, split: str = "val") -> dict[str, list[float]]:
    """Per-epoch accuracy curves of the neural models (companion to loss_curves)."""
    if split not in ("train", "val"):
        raise ValueError(f"split must be 'train' or 'val', got {split!r}")
    key = "train_accuracy" if split == "train" else "val_accuracy"
    curves: dict[str, list[float]] = {}
    for name, model_result in result.model_results.items():
        history = model_result.history or {}
        series = history.get(key, [])
        if series:
            curves[DISPLAY_NAMES.get(name, name)] = list(series)
    return curves


def feature_frequency_histogram(
    corpus: RecipeDB,
    kind: TokenKind | None = None,
    n_bins: int = 20,
    top_k: int = 25,
) -> dict:
    """Figures "feat" / "feature" / "fig1" — feature frequency distribution.

    Returns a dict with:
        * ``"top_features"`` — the *top_k* most frequent features and counts;
        * ``"histogram"`` — log-spaced occurrence-count bins and the number of
          features falling in each (the long-tail shape);
        * ``"total_features"`` — vocabulary size of the selected substructure.
    """
    counts = corpus.token_counts(kind)
    if not counts:
        return {"top_features": [], "histogram": [], "total_features": 0}
    frequencies = sorted(counts.values(), reverse=True)
    top = counts.most_common(top_k)

    max_count = frequencies[0]
    edges = [1]
    while edges[-1] < max_count:
        edges.append(edges[-1] * 2)
    edges = edges[: n_bins + 1] if len(edges) > n_bins + 1 else edges
    histogram: list[dict] = []
    tally = Counter()
    for value in frequencies:
        for low, high in zip(edges[:-1], edges[1:]):
            if low <= value < high:
                tally[(low, high)] += 1
                break
        else:
            tally[(edges[-1], None)] += 1
    for low, high in zip(edges[:-1], edges[1:]):
        histogram.append({"bin": f"[{low}, {high})", "features": tally.get((low, high), 0)})
    overflow = tally.get((edges[-1], None), 0)
    if overflow:
        histogram.append({"bin": f">={edges[-1]}", "features": overflow})

    return {
        "top_features": [{"feature": feature, "count": count} for feature, count in top],
        "histogram": histogram,
        "total_features": len(counts),
    }
