"""``repro-cluster`` — prefork a worker fleet behind one port.

The cluster counterpart of ``repro-serve``:

* ``repro-cluster --export-dir runs/export --workers 4`` serves the export
  from four worker processes sharing one port (``SO_REUSEPORT``; a
  consistent-hash balancer where the platform lacks it);
* ``repro-cluster --demo --workers 2`` trains the demo model **once** and
  serves it as ``cuisine@v1`` from two workers.

The supervisor's control address (``--control-port``) serves the fleet
view: merged ``/healthz`` and ``/metrics``, ``/workers``, ``/admin``
fan-out, and — guarded by ``--admin-token`` — ``POST /cluster/restart``
(rolling, zero-downtime) and ``POST /cluster/resize``.  ``--ready-file``
writes ``{host, port, control_port, pid, workers}`` once the fleet is
serving.  SIGTERM/SIGINT drain every worker gracefully before exit.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import os
import signal
import sys
from pathlib import Path

from repro.cluster.supervisor import ClusterSupervisor

logger = logging.getLogger("repro.cluster")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Serve repro model bundles from a prefork worker fleet.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--export-dir",
        help="experiment export directory the workers serve",
    )
    source.add_argument(
        "--demo",
        action="store_true",
        help="train a demo model once and serve it as cuisine@v1 from the fleet",
    )
    parser.add_argument("--workers", type=int, default=2, help="fleet size")
    parser.add_argument("--version", default="v1", help="version label for deployed bundles")
    parser.add_argument(
        "--route",
        help="serve a single-bundle --export-dir under this route name",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8000, help="public data port (0 = ephemeral)"
    )
    parser.add_argument(
        "--control-port",
        type=int,
        default=0,
        help="supervisor control port for fleet health/metrics/admin "
        "(0 binds an ephemeral port, see --ready-file)",
    )
    parser.add_argument(
        "--mode",
        choices=("auto", "reuseport", "balancer"),
        default="auto",
        help="how the fleet shares the public port (auto: reuseport when "
        "the platform supports it, balancer otherwise)",
    )
    parser.add_argument(
        "--admin-token",
        default=os.environ.get("REPRO_ADMIN_TOKEN"),
        help="enable /admin fan-out and /cluster verbs guarded by this token "
        "(default: $REPRO_ADMIN_TOKEN; unset disables them)",
    )
    parser.add_argument(
        "--no-mmap-bundles",
        dest="mmap_bundles",
        action="store_false",
        help="load a private in-memory copy of the bundles per worker "
        "instead of memory-mapping one shared extracted copy",
    )
    parser.add_argument("--cache-size", type=int, help="per-worker result-cache entries")
    parser.add_argument(
        "--max-batch-size",
        type=int,
        help="per-worker micro-batch size cap",
    )
    parser.add_argument(
        "--flush-interval",
        type=float,
        help="per-worker fixed-policy flush window in seconds "
        "(0 never waits; worker default 0.005)",
    )
    parser.add_argument(
        "--batch-policy",
        choices=("fixed", "adaptive"),
        help="per-worker micro-batch flush control (see repro-serve "
        "--batch-policy)",
    )
    parser.add_argument(
        "--slo-ms",
        type=float,
        help="per-request latency objective (ms) for the adaptive batch "
        "policy, forwarded to every worker",
    )
    parser.add_argument("--max-inflight", type=int)
    parser.add_argument(
        "--service-time",
        type=float,
        default=0.0,
        help="benchmark hook: synthetic per-pass service time, forwarded to "
        "every worker",
    )
    parser.add_argument("--drain-timeout", type=float, default=30.0)
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        help="head-sampling rate for request tracing, forwarded to every "
        "worker and to the balancer (slow/error traces always kept)",
    )
    parser.add_argument(
        "--trace-slow-ms",
        type=float,
        default=250.0,
        help="latency threshold (ms) above which a trace is always kept",
    )
    parser.add_argument(
        "--trace-seed",
        type=int,
        default=0,
        help="seed of the deterministic trace-id / head-sampling hash",
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="disable request tracing across the fleet",
    )
    parser.add_argument("--demo-scale", type=float, default=0.004)
    parser.add_argument("--demo-seed", type=int, default=11)
    parser.add_argument(
        "--ready-file",
        help="write {host, port, control_port, pid, workers} JSON here once "
        "the fleet is serving",
    )
    parser.add_argument("--log-level", default="INFO")
    return parser


async def _run(supervisor: ClusterSupervisor, ready_file: str | None) -> None:
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, supervisor.request_stop)
        except NotImplementedError:  # non-POSIX event loops
            pass

    def announce() -> None:
        print(
            f"repro-cluster: {len(supervisor._workers)} workers on "
            f"http://{supervisor.host}:{supervisor.port} "
            f"(control http://{supervisor.host}:{supervisor.control_port})",
            flush=True,
        )
        if ready_file:
            Path(ready_file).write_text(
                json.dumps(
                    {
                        "host": supervisor.host,
                        "port": supervisor.port,
                        "control_port": supervisor.control_port,
                        "pid": os.getpid(),
                        "workers": len(supervisor._workers),
                    }
                )
            )

    await supervisor.run(ready=announce)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper(), logging.INFO),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    supervisor = ClusterSupervisor(
        workers=args.workers,
        host=args.host,
        port=args.port,
        control_port=args.control_port,
        export_dir=args.export_dir,
        demo=args.demo,
        demo_scale=args.demo_scale,
        demo_seed=args.demo_seed,
        route=args.route,
        version=args.version,
        admin_token=args.admin_token,
        mode=args.mode,
        mmap_bundles=args.mmap_bundles,
        cache_size=args.cache_size,
        max_batch_size=args.max_batch_size,
        flush_interval=args.flush_interval,
        batch_policy=args.batch_policy,
        slo_ms=args.slo_ms,
        service_time=args.service_time,
        max_inflight=args.max_inflight,
        drain_timeout=args.drain_timeout,
        log_level=args.log_level,
        trace_sample=None if args.no_trace else args.trace_sample,
        trace_slow_ms=args.trace_slow_ms,
        trace_seed=args.trace_seed,
    )
    try:
        asyncio.run(_run(supervisor, args.ready_file))
    except KeyboardInterrupt:
        pass
    print("repro-cluster drained cleanly", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
