"""Fleet-wide aggregation of per-worker health snapshots.

Every :class:`~repro.server.app.ModelServer` worker exposes the same
``/healthz`` document (gateway routes + service stats + server stats).
:func:`merge_health_snapshots` folds N of them into one fleet view by
structural recursion:

* dicts shaped like a :class:`~repro.observability.RollingLatency` snapshot
  merge through :func:`~repro.observability.merge_latency_snapshots`
  (exact counts/totals/max, count-weighted quantiles); the unit-free
  :class:`~repro.observability.RollingDistribution` shape (batch sizes,
  queue depths) routes likewise to
  :func:`~repro.observability.merge_distribution_snapshots`;
* integer leaves (request/error/cache counters, capacities, in-flight
  gauges) **sum** — the fleet serves the union of the workers' traffic;
* float leaves (``mean_batch_size``, ``agreement_rate``) **average** over
  the workers reporting a value — an unweighted approximation, exact when
  traffic spreads evenly;
* ``status`` merges worst-of (any non-``ok`` worker degrades the fleet);
  other strings keep the common value, or the sorted set of distinct
  values when workers disagree (e.g. mid-rolling-restart ``active``
  versions);
* booleans ``or`` together (``draining`` means *some* worker is draining),
  except ``healthy`` which ``and``s.

Per-worker identity (``worker_id``) is dropped from the merged document —
the supervisor publishes the unmerged per-worker snapshots alongside.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.observability import (
    DISTRIBUTION_SNAPSHOT_KEYS,
    LATENCY_SNAPSHOT_KEYS,
    merge_counter_dicts,
    merge_distribution_snapshots,
    merge_latency_snapshots,
)

__all__ = [
    "merge_health_snapshots",
    "merge_counter_dicts",
    "merge_distribution_snapshots",
    "merge_latency_snapshots",
]

#: Keys that identify a single worker and are meaningless fleet-wide.
_PER_WORKER_KEYS = frozenset({"worker_id"})

#: Process-gauge keys with dedicated merge semantics: summing or averaging
#: pids is meaningless, and averaging uptimes hides the youngest/oldest
#: worker mid-rolling-restart.
_PID_KEYS = frozenset({"pid"})
_MAX_KEYS = frozenset({"uptime_seconds"})


def _is_latency_snapshot(value: object) -> bool:
    return (
        isinstance(value, Mapping)
        and "count" in value
        and set(value.keys()) <= LATENCY_SNAPSHOT_KEYS
    )


def _is_distribution_snapshot(value: object) -> bool:
    # "mean" (unit-free, vs "mean_ms") separates the two snapshot shapes;
    # without the explicit route a distribution would fall through to the
    # generic merge, which *sums* integer leaves — fleet-wide "max batch
    # size" must be the max, not the sum.
    return (
        isinstance(value, Mapping)
        and "count" in value
        and "mean" in value
        and set(value.keys()) <= DISTRIBUTION_SNAPSHOT_KEYS
    )


def merge_health_snapshots(snapshots: Sequence[Mapping]) -> dict:
    """One fleet-wide health document from per-worker ``/healthz`` snapshots.

    Tolerates a heterogeneous fleet (a worker mid-restart may miss routes
    the others carry): every key present in *any* snapshot appears in the
    merge, aggregated over the workers that report it.
    """
    nodes = [snapshot for snapshot in snapshots if isinstance(snapshot, Mapping)]
    if not nodes:
        return {}
    return _merge_nodes(nodes)


def _merge_nodes(nodes: Sequence[Mapping]) -> dict:
    keys: list = []
    for node in nodes:  # first-seen key order, union over the fleet
        for key in node:
            if key not in keys:
                keys.append(key)
    merged: dict = {}
    for key in keys:
        if key in _PER_WORKER_KEYS:
            continue
        merged[key] = _merge_values(key, [node[key] for node in nodes if key in node])
    return merged


def _merge_values(key: str, values: list):
    present = [value for value in values if value is not None]
    if not present:
        return None
    if key in _PID_KEYS and all(isinstance(value, int) for value in present):
        # The fleet has N pids, not one: publish the sorted list (a single
        # worker keeps its scalar so one-node views stay unchanged).
        return present[0] if len(present) == 1 else sorted(present)
    if key in _MAX_KEYS and all(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        for value in present
    ):
        # Fleet uptime is the oldest worker's — averaging would dip on every
        # rolling restart even though the fleet never went down.
        return max(present)
    if all(_is_latency_snapshot(value) for value in present):
        return merge_latency_snapshots(present)
    if all(_is_distribution_snapshot(value) for value in present):
        return merge_distribution_snapshots(present)
    if all(isinstance(value, Mapping) for value in present):
        return _merge_nodes(present)
    if all(isinstance(value, bool) for value in present):
        return all(present) if key == "healthy" else any(present)
    if all(isinstance(value, int) and not isinstance(value, bool) for value in present):
        return sum(present)
    if all(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        for value in present
    ):
        return sum(present) / len(present)
    if key == "status":
        return (
            "ok"
            if all(value == "ok" for value in present)
            else next(value for value in present if value != "ok")
        )
    if all(isinstance(value, str) for value in present):
        distinct = sorted(set(present))
        return distinct[0] if len(distinct) == 1 else distinct
    return present[0]
