"""The multi-process scale-out tier: a prefork supervisor over repro workers.

One :class:`ClusterSupervisor` owns a fleet of ``repro.server`` worker
**processes** serving the same bundles on one public address:

* **reuseport mode** (default wherever the platform has ``SO_REUSEPORT``,
  i.e. Linux/BSD/macOS): the supervisor binds one ``SO_REUSEPORT``
  listening socket *per worker* on the same port and hands each worker its
  socket by file descriptor (``repro-serve --socket-fd``).  The kernel
  spreads incoming connections across the workers — no proxy hop on the
  data path;
* **balancer mode** (fallback, or ``mode="balancer"``): workers bind
  private ephemeral ports and a
  :class:`~repro.cluster.balancer.ClusterBalancer` on the public port
  consistent-hashes routing keys across them.

Each worker also opens a private **control port** (the same HTTP surface on
a per-process address), which is what keeps a shared-port fleet manageable:
the supervisor aggregates every worker's ``/healthz`` into one fleet
document (:func:`~repro.cluster.metrics.merge_health_snapshots`), fans
``/admin`` calls out to all workers, and serves both — plus ``/metrics``
text and the ``/cluster/restart`` / ``/cluster/resize`` verbs — from its
own control server.

Crashed workers are respawned with exponential backoff.  A **rolling
restart** replaces workers one at a time, spawn-before-drain: the
replacement is serving on the shared port (or in the ring) *before* the
old worker gets SIGTERM and drains its in-flight requests — under a
keep-alive client with stale-socket retry, a full fleet roll drops zero
requests.

Workers load bundles memory-mapped by default (``--mmap-bundles``): the
bundle's arrays are paged from one extracted on-disk copy shared by every
worker, so fleet RSS grows far slower than linearly with worker count.
"""

from __future__ import annotations

import asyncio
import hmac
import itertools
import json
import logging
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from repro.cluster.balancer import ClusterBalancer
from repro.cluster.metrics import merge_health_snapshots
from repro.loadgen.client import ClientConnection
from repro.observability import render_metrics_text
from repro.server.protocol import HTTPError, HTTPRequest, json_response, read_request, render_response

logger = logging.getLogger(__name__)

#: Seconds a worker must stay up for its crash-backoff counter to reset.
_STABLE_SECONDS = 30.0
_BACKOFF_BASE = 0.5
_BACKOFF_CAP = 8.0


def has_reuseport() -> bool:
    """Whether this platform can share one port across worker processes."""
    return hasattr(socket, "SO_REUSEPORT")


@dataclass
class Worker:
    """One live worker process and where to reach it."""

    index: int
    process: subprocess.Popen
    port: int
    control_port: int
    started_at: float
    restarts: int = 0
    #: Deliberate shutdown in progress — the crash monitor must not respawn.
    stopping: bool = False
    backend_name: str = field(default="")

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def info(self) -> dict:
        return {
            "worker": self.index,
            "pid": self.process.pid,
            "port": self.port,
            "control_port": self.control_port,
            "restarts": self.restarts,
            "alive": self.alive,
        }


class ClusterHandle:
    """Thread-safe control handle for a supervisor in a background thread."""

    def __init__(self, supervisor: "ClusterSupervisor", thread: threading.Thread) -> None:
        self.supervisor = supervisor
        self._thread = thread

    @property
    def host(self) -> str:
        return self.supervisor.host

    @property
    def port(self) -> int:
        return self.supervisor.port

    @property
    def control_port(self) -> int:
        return self.supervisor.control_port

    def _call(self, coroutine, timeout: float):
        loop = self.supervisor._loop
        if loop is None:
            coroutine.close()
            raise RuntimeError("supervisor is not running")
        return asyncio.run_coroutine_threadsafe(coroutine, loop).result(timeout)

    def rolling_restart(self, timeout: float = 600.0) -> list[int]:
        """Replace every worker, one at a time, without dropping requests."""
        return self._call(self.supervisor.rolling_restart(), timeout)

    def resize(self, workers: int, timeout: float = 600.0) -> int:
        return self._call(self.supervisor.resize(workers), timeout)

    def fleet_health(self, timeout: float = 60.0) -> dict:
        return self._call(self.supervisor.fleet_health(), timeout)

    def stop(self, timeout: float = 120.0) -> None:
        self.supervisor.request_stop()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError(f"cluster did not stop within {timeout}s")


class ClusterSupervisor:
    """Prefork and babysit N ``repro.server`` workers behind one address.

    Args:
        workers: Fleet size to start with (``resize`` changes it live).
        host / port: Public data address (``port=0`` picks an ephemeral
            port, published on :attr:`port` once the first socket binds).
        control_port: Supervisor's own HTTP address for fleet health,
            merged metrics, admin fan-out and cluster verbs (``0`` =
            ephemeral, published on :attr:`control_port`).
        export_dir / demo: What the workers serve — a bundle export
            directory, or a demo logreg the supervisor trains **once** and
            every worker loads (as route ``cuisine``).
        route: Serve a single-bundle export under this route name.
        mode: ``"reuseport"``, ``"balancer"``, or ``"auto"`` (reuseport
            when the platform supports it).
        mmap_bundles: Workers map bundle arrays from the shared extracted
            archive instead of copying them per process (default on — the
            point of a prefork fleet).
        cache_size / max_batch_size / flush_interval / batch_policy /
            slo_ms / service_time / max_inflight / drain_timeout:
            Forwarded to each worker's CLI.
        admin_token: Enables ``/admin`` and ``/cluster`` verbs on the
            control server, and is handed to workers via the environment.
        workdir: Scratch directory for ready-files and demo training
            (a private temporary directory when ``None``).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        control_port: int = 0,
        export_dir: str | Path | None = None,
        demo: bool = False,
        demo_scale: float = 0.004,
        demo_seed: int = 11,
        route: str | None = None,
        version: str = "v1",
        admin_token: str | None = None,
        mode: str = "auto",
        mmap_bundles: bool = True,
        cache_size: int | None = None,
        max_batch_size: int | None = None,
        flush_interval: float | None = None,
        batch_policy: str | None = None,
        slo_ms: float | None = None,
        service_time: float = 0.0,
        max_inflight: int | None = None,
        drain_timeout: float = 30.0,
        spawn_timeout: float = 120.0,
        workdir: str | Path | None = None,
        log_level: str = "INFO",
        trace_sample: float | None = 1.0,
        trace_slow_ms: float = 250.0,
        trace_seed: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if (export_dir is None) == (not demo):
            raise ValueError("exactly one of export_dir or demo is required")
        if mode not in ("auto", "reuseport", "balancer"):
            raise ValueError(f"mode must be auto/reuseport/balancer, got {mode!r}")
        if mode == "reuseport" and not has_reuseport():
            raise ValueError("this platform has no SO_REUSEPORT; use mode='balancer'")
        self.workers = workers
        self.host = host
        self.port = port
        self.control_port = control_port
        self.export_dir = str(export_dir) if export_dir is not None else None
        self.demo = demo
        self.demo_scale = demo_scale
        self.demo_seed = demo_seed
        self.route = route
        self.version = version
        self.admin_token = admin_token
        self.mode = mode if mode != "auto" else ("reuseport" if has_reuseport() else "balancer")
        self.mmap_bundles = mmap_bundles
        self.cache_size = cache_size
        self.max_batch_size = max_batch_size
        self.flush_interval = flush_interval
        self.batch_policy = batch_policy
        self.slo_ms = slo_ms
        self.service_time = service_time
        self.max_inflight = max_inflight
        self.drain_timeout = drain_timeout
        self.spawn_timeout = spawn_timeout
        self.trace_sample = trace_sample
        self.trace_slow_ms = trace_slow_ms
        self.trace_seed = trace_seed
        self.workdir = Path(workdir) if workdir is not None else None
        self.log_level = log_level

        self._workers: dict[int, Worker] = {}
        self._crashes: dict[int, int] = {}
        self._respawns = 0
        self._spawn_serial = itertools.count()
        self._fleet_lock: asyncio.Lock | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._control_server: asyncio.base_events.Server | None = None
        self._balancer: ClusterBalancer | None = None
        self._balancer_task: asyncio.Task | None = None
        self._monitor_task: asyncio.Task | None = None
        self._tmpdir: tempfile.TemporaryDirectory | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def run(self, ready: Callable[[], None] | None = None) -> None:
        """Train (demo), prefork the fleet, serve control plane until stopped."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._fleet_lock = asyncio.Lock()
        if self.workdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            self.workdir = Path(self._tmpdir.name)
        self.workdir.mkdir(parents=True, exist_ok=True)
        try:
            if self.demo:
                from repro.server.cli import train_demo_export

                export = self.workdir / "demo-export"
                bundle = await asyncio.to_thread(
                    train_demo_export, self.demo_scale, self.demo_seed, export
                )
                self.export_dir = str(bundle.parent)
                if self.route is None:
                    self.route = "cuisine"
            if self.mode == "balancer":
                self._balancer = ClusterBalancer(
                    host=self.host,
                    port=self.port,
                    trace_sample=self.trace_sample,
                    trace_slow_ms=self.trace_slow_ms,
                    trace_seed=self.trace_seed,
                )
                started = asyncio.Event()
                self._balancer_task = asyncio.create_task(
                    self._balancer.serve(ready=started.set)
                )
                await started.wait()
                self.port = self._balancer.port
            assert self._fleet_lock is not None
            async with self._fleet_lock:
                for index in range(self.workers):
                    self._adopt(await self._spawn(index))
            limit = 65536
            self._control_server = await asyncio.start_server(
                self._handle_control, host=self.host, port=self.control_port, limit=limit
            )
            self.control_port = self._control_server.sockets[0].getsockname()[1]
            self._monitor_task = asyncio.create_task(self._monitor())
            logger.info(
                "repro.cluster: %d workers on %s:%d (%s mode), control on :%d",
                len(self._workers), self.host, self.port, self.mode, self.control_port,
            )
            if ready is not None:
                ready()
            await self._stop_event.wait()
        finally:
            await self._shutdown()

    def request_stop(self) -> None:
        """Thread-safe: begin the fleet shutdown (idempotent)."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass

    def start_in_thread(self, *, timeout: float = 300.0) -> ClusterHandle:
        """Run the supervisor on a background thread; returns once serving."""
        ready = threading.Event()
        failures: list[BaseException] = []

        def runner() -> None:
            try:
                asyncio.run(self.run(ready=ready.set))
            except BaseException as exc:
                failures.append(exc)
            finally:
                ready.set()

        thread = threading.Thread(target=runner, name="repro-cluster", daemon=True)
        thread.start()
        if not ready.wait(timeout):
            self.request_stop()
            raise TimeoutError(f"cluster failed to start within {timeout}s")
        if failures:
            raise failures[0]
        return ClusterHandle(self, thread)

    async def _shutdown(self) -> None:
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()
        workers = list(self._workers.values())
        self._workers.clear()
        for worker in workers:
            worker.stopping = True
        await asyncio.gather(
            *(self._terminate(worker) for worker in workers), return_exceptions=True
        )
        if self._balancer is not None:
            self._balancer.request_stop()
            if self._balancer_task is not None:
                await self._balancer_task
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
        logger.info("repro.cluster: stopped (%d workers drained)", len(workers))

    # ------------------------------------------------------------------
    # worker processes
    # ------------------------------------------------------------------
    def _listen_socket(self) -> socket.socket:
        """A fresh SO_REUSEPORT listening socket on the shared public port."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.host, self.port))
            sock.listen(128)
        except BaseException:
            sock.close()
            raise
        if self.port == 0:
            self.port = sock.getsockname()[1]
        return sock

    def _worker_env(self) -> dict[str, str]:
        env = os.environ.copy()
        # Workers must import repro from the same tree as the supervisor,
        # whether it is installed or run from a source checkout.
        import repro

        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + existing if existing else "")
            )
        if self.admin_token is not None:
            env["REPRO_ADMIN_TOKEN"] = self.admin_token
        return env

    async def _spawn(self, index: int) -> Worker:
        """Start one worker and wait until it is serving (ready-file)."""
        assert self.export_dir is not None
        ready_path = self.workdir / f"worker-{index}-{next(self._spawn_serial)}.ready.json"
        command = [
            sys.executable, "-m", "repro.server.cli",
            "--export-dir", self.export_dir,
            "--version", self.version,
            "--control-port", "0",
            "--worker-id", str(index),
            "--ready-file", str(ready_path),
            "--drain-timeout", str(self.drain_timeout),
            "--log-level", self.log_level,
        ]
        if self.route is not None:
            command += ["--route", self.route]
        if self.mmap_bundles:
            command += ["--mmap-bundles"]
        if self.cache_size is not None:
            command += ["--cache-size", str(self.cache_size)]
        if self.max_batch_size is not None:
            command += ["--max-batch-size", str(self.max_batch_size)]
        if self.flush_interval is not None:
            command += ["--flush-interval", str(self.flush_interval)]
        if self.batch_policy is not None:
            command += ["--batch-policy", self.batch_policy]
        if self.slo_ms is not None:
            command += ["--slo-ms", str(self.slo_ms)]
        if self.service_time > 0:
            command += ["--service-time", str(self.service_time)]
        if self.max_inflight is not None:
            command += ["--max-inflight", str(self.max_inflight)]
        if self.trace_sample is None:
            command += ["--no-trace"]
        else:
            command += ["--trace-sample", str(self.trace_sample)]
        command += ["--trace-slow-ms", str(self.trace_slow_ms)]
        command += ["--trace-seed", str(self.trace_seed)]
        sock: socket.socket | None = None
        pass_fds: tuple[int, ...] = ()
        if self.mode == "reuseport":
            sock = self._listen_socket()
            command += ["--socket-fd", str(sock.fileno())]
            pass_fds = (sock.fileno(),)
        else:
            command += ["--host", self.host, "--port", "0"]
        process = subprocess.Popen(command, pass_fds=pass_fds, env=self._worker_env())
        if sock is not None:
            # The worker holds its own copy now; keeping ours open would
            # leave a dead listener accepting (and stranding) connections
            # after the worker exits.
            sock.close()
        info = await self._await_ready(process, ready_path)
        worker = Worker(
            index=index,
            process=process,
            port=int(info["port"]),
            control_port=int(info["control_port"]),
            started_at=time.monotonic(),
        )
        worker.backend_name = f"{index}@{worker.port}"
        logger.info(
            "repro.cluster: worker %d up (pid %d, port %d, control %d)",
            index, process.pid, worker.port, worker.control_port,
        )
        return worker

    async def _await_ready(self, process: subprocess.Popen, ready_path: Path) -> dict:
        deadline = time.monotonic() + self.spawn_timeout
        while True:
            if ready_path.exists():
                try:
                    return json.loads(ready_path.read_text(encoding="utf-8"))
                except (json.JSONDecodeError, OSError):
                    pass  # mid-write; retry next tick
            if process.poll() is not None:
                raise RuntimeError(
                    f"worker exited with status {process.returncode} before ready"
                )
            if time.monotonic() > deadline:
                process.kill()
                raise TimeoutError(f"worker not ready within {self.spawn_timeout}s")
            await asyncio.sleep(0.05)

    def _adopt(self, worker: Worker) -> None:
        self._workers[worker.index] = worker
        if self._balancer is not None:
            self._balancer.add_backend(worker.backend_name, self.host, worker.port)

    async def _terminate(self, worker: Worker) -> None:
        """SIGTERM one worker and wait out its graceful drain."""
        worker.stopping = True
        if self._balancer is not None:
            self._balancer.remove_backend(worker.backend_name)
        try:
            worker.process.send_signal(signal.SIGTERM)
        except ProcessLookupError:
            return
        try:
            await asyncio.to_thread(worker.process.wait, self.drain_timeout + 15)
        except subprocess.TimeoutExpired:
            logger.warning(
                "repro.cluster: worker %d did not drain; killing", worker.index
            )
            worker.process.kill()
            await asyncio.to_thread(worker.process.wait, 10)

    async def _monitor(self) -> None:
        """Respawn crashed workers with exponential backoff."""
        assert self._fleet_lock is not None
        while True:
            await asyncio.sleep(0.2)
            async with self._fleet_lock:
                for index, worker in list(self._workers.items()):
                    if worker.alive or worker.stopping:
                        continue
                    if time.monotonic() - worker.started_at > _STABLE_SECONDS:
                        self._crashes[index] = 0
                    crashes = self._crashes.get(index, 0)
                    delay = min(_BACKOFF_BASE * (2 ** crashes), _BACKOFF_CAP)
                    self._crashes[index] = crashes + 1
                    logger.warning(
                        "repro.cluster: worker %d died (status %s); respawning in %.1fs",
                        index, worker.process.returncode, delay,
                    )
                    if self._balancer is not None:
                        self._balancer.remove_backend(worker.backend_name)
                    await asyncio.sleep(delay)
                    try:
                        replacement = await self._spawn(index)
                    except (RuntimeError, TimeoutError) as exc:
                        logger.error(
                            "repro.cluster: respawn of worker %d failed: %s", index, exc
                        )
                        continue
                    replacement.restarts = worker.restarts + 1
                    self._respawns += 1
                    self._adopt(replacement)

    # ------------------------------------------------------------------
    # fleet operations
    # ------------------------------------------------------------------
    async def rolling_restart(self) -> list[int]:
        """Replace every worker one at a time, spawn-before-drain.

        The replacement worker is accepting on the shared port (reuseport)
        or in the ring (balancer) *before* the old worker is told to drain,
        so the fleet never has fewer than ``workers`` serving processes.
        """
        assert self._fleet_lock is not None
        restarted: list[int] = []
        async with self._fleet_lock:
            for index in sorted(self._workers):
                old = self._workers[index]
                replacement = await self._spawn(index)
                replacement.restarts = old.restarts + 1
                self._adopt(replacement)  # replaces the dict slot; old drains below
                await self._terminate(old)
                restarted.append(index)
                logger.info("repro.cluster: rolled worker %d", index)
        return restarted

    async def resize(self, target: int) -> int:
        """Grow or shrink the fleet to *target* workers (graceful drain)."""
        if target < 1:
            raise ValueError(f"workers must be >= 1, got {target}")
        assert self._fleet_lock is not None
        async with self._fleet_lock:
            for index in sorted(self._workers, reverse=True):
                if len(self._workers) <= target:
                    break
                worker = self._workers.pop(index)
                self._crashes.pop(index, None)
                await self._terminate(worker)
            index = 0
            while len(self._workers) < target:
                if index not in self._workers:
                    self._adopt(await self._spawn(index))
                index += 1
            self.workers = target
        return target

    # ------------------------------------------------------------------
    # fleet observability
    # ------------------------------------------------------------------
    async def _worker_health(self, worker: Worker) -> dict | None:
        connection = ClientConnection(self.host, worker.control_port)
        try:
            response = await asyncio.wait_for(
                connection.request("GET", "/healthz"), timeout=10.0
            )
            return response.json() if response.status == 200 else None
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
            return None
        finally:
            connection.close()

    async def fleet_health(self) -> dict:
        """Merged fleet ``/healthz`` plus a ``cluster`` membership block."""
        workers = sorted(self._workers.values(), key=lambda worker: worker.index)
        snapshots = await asyncio.gather(
            *(self._worker_health(worker) for worker in workers)
        )
        merged = merge_health_snapshots([s for s in snapshots if s is not None])
        members = []
        for worker, snapshot in zip(workers, snapshots):
            info = worker.info()
            info["reachable"] = snapshot is not None
            members.append(info)
        merged.setdefault("status", "empty")
        if any(not member["reachable"] for member in members):
            merged["status"] = "degraded"
        merged["cluster"] = {
            "mode": self.mode,
            "port": self.port,
            "workers": sum(1 for worker in workers if worker.alive),
            "target_workers": self.workers,
            "respawns": self._respawns,
            "members": members,
        }
        return merged

    async def fleet_metrics_payload(self) -> dict:
        merged = await self.fleet_health()
        cluster = {
            key: value
            for key, value in merged.get("cluster", {}).items()
            if key != "members"
        }
        cluster["unreachable"] = sum(
            1 for member in merged.get("cluster", {}).get("members", ())
            if not member["reachable"]
        )
        return {
            "healthy": merged.get("status") == "ok",
            "routes": merged.get("routes", {}),
            "service": merged.get("service", {}),
            "server": merged.get("server", {}),
            "cluster": cluster,
        }

    async def _worker_debug(self, worker: Worker, path: str) -> dict | None:
        """GET a worker's control-port debug endpoint; None when unreachable."""
        connection = ClientConnection(self.host, worker.control_port)
        try:
            response = await asyncio.wait_for(
                connection.request("GET", path), timeout=10.0
            )
            return response.json() if response.status == 200 else None
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
            return None
        finally:
            connection.close()

    async def fleet_traces(self) -> dict:
        """Fleet-wide trace summaries: every worker's store + the balancer's.

        Summaries sharing one trace id (a balancer hop stitched to a worker's
        server spans) merge into a single row listing every origin that holds
        a piece of the trace.
        """
        workers = sorted(self._workers.values(), key=lambda worker: worker.index)
        payloads = await asyncio.gather(
            *(self._worker_debug(worker, "/debug/traces") for worker in workers)
        )
        by_id: dict[str, dict] = {}

        def fold(summary: dict, origin: str) -> None:
            trace_id = summary.get("trace_id")
            if not trace_id:
                return
            merged = by_id.get(trace_id)
            if merged is None:
                merged = by_id[trace_id] = dict(summary)
                merged["origins"] = []
            else:
                merged["spans"] = merged.get("spans", 0) + summary.get("spans", 0)
                merged["error"] = bool(merged.get("error")) or bool(summary.get("error"))
                merged["slow"] = bool(merged.get("slow")) or bool(summary.get("slow"))
                merged["duration_ms"] = max(
                    merged.get("duration_ms") or 0.0, summary.get("duration_ms") or 0.0
                )
            merged["origins"].append(origin)

        if self._balancer is not None:
            for summary in self._balancer.traces.list():
                fold(summary, "balancer")
        for worker, payload in zip(workers, payloads):
            if payload is None:
                continue
            for summary in payload.get("traces", ()):
                fold(summary, f"worker-{worker.index}")
        stats = {}
        for worker, payload in zip(workers, payloads):
            if payload is not None and "stats" in payload:
                stats[f"worker-{worker.index}"] = payload["stats"]
        if self._balancer is not None:
            stats["balancer"] = self._balancer.traces.stats()
        return {"traces": list(by_id.values()), "stats": stats}

    async def fleet_trace(self, trace_id: str) -> dict | None:
        """One merged trace: balancer spans + every worker's spans, stitched
        by the shared id, each span annotated with its origin."""
        workers = sorted(self._workers.values(), key=lambda worker: worker.index)
        payloads = await asyncio.gather(
            *(
                self._worker_debug(worker, f"/debug/traces/{trace_id}")
                for worker in workers
            )
        )
        pieces: list[tuple[str, dict]] = []
        if self._balancer is not None:
            stored = self._balancer.traces.get(trace_id)
            if stored is not None:
                pieces.append(("balancer", stored))
        for worker, payload in zip(workers, payloads):
            if payload is not None:
                pieces.append((f"worker-{worker.index}", payload))
        if not pieces:
            return None
        merged: dict = {
            "trace_id": trace_id,
            "key": pieces[0][1].get("key"),
            "sampled": any(piece.get("sampled") for _, piece in pieces),
            "error": any(piece.get("error") for _, piece in pieces),
            "slow": any(piece.get("slow") for _, piece in pieces),
            # Each origin measures on its own monotonic clock, so durations
            # compare but span start offsets only order *within* an origin.
            "duration_ms": max(
                float(piece.get("duration_ms") or 0.0) for _, piece in pieces
            ),
            "origins": [origin for origin, _ in pieces],
        }
        spans = []
        for origin, piece in pieces:
            for span in piece.get("spans", ()):
                span = dict(span)
                span["origin"] = origin
                spans.append(span)
        merged["spans"] = spans
        return merged

    # ------------------------------------------------------------------
    # control plane HTTP
    # ------------------------------------------------------------------
    def _require_admin(self, request: HTTPRequest) -> None:
        if self.admin_token is None:
            raise HTTPError(
                403, "admin_disabled",
                "cluster verbs are disabled (supervisor started without an admin token)",
            )
        presented = request.headers.get("x-admin-token") or ""
        if not hmac.compare_digest(
            presented.encode("utf-8"), self.admin_token.encode("utf-8")
        ):
            raise HTTPError(401, "unauthorized", "missing or invalid x-admin-token header")

    async def _fan_out_admin(self, request: HTTPRequest):
        """Replay one ``/admin`` request on every worker's control port."""
        payload = json.loads(request.body) if request.body else None
        headers = {"x-admin-token": request.headers.get("x-admin-token", "")}
        workers = sorted(self._workers.values(), key=lambda worker: worker.index)

        async def one(worker: Worker) -> dict:
            connection = ClientConnection(self.host, worker.control_port)
            try:
                response = await asyncio.wait_for(
                    connection.request(request.method, request.path, payload, headers),
                    timeout=60.0,
                )
                body = response.json() if response.body else None
                return {"worker": worker.index, "status": response.status, "body": body}
            except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError) as exc:
                return {
                    "worker": worker.index, "status": 502,
                    "error": type(exc).__name__,
                }
            finally:
                connection.close()

        results = await asyncio.gather(*(one(worker) for worker in workers))
        status = 200 if results and all(r["status"] == 200 for r in results) else 502
        return status, {"results": list(results)}

    async def _dispatch_control(self, request: HTTPRequest):
        segments = request.segments
        if segments == ("healthz",):
            return 200, await self.fleet_health()
        if segments == ("metrics",):
            return 200, render_metrics_text(await self.fleet_metrics_payload())
        if segments == ("workers",):
            workers = sorted(self._workers.values(), key=lambda worker: worker.index)
            return 200, {"workers": [worker.info() for worker in workers]}
        if segments == ("debug", "traces"):
            return 200, await self.fleet_traces()
        if len(segments) == 3 and segments[:2] == ("debug", "traces"):
            merged = await self.fleet_trace(segments[2])
            if merged is None:
                raise HTTPError(
                    404, "unknown_trace",
                    f"no worker or balancer holds a trace {segments[2]!r}",
                )
            return 200, merged
        if len(segments) == 4 and segments[:2] == ("admin", "routes"):
            return await self._fan_out_admin(request)
        if segments == ("cluster", "restart"):
            self._require_admin(request)
            restarted = await self.rolling_restart()
            return 200, {"restarted": restarted, "workers": len(self._workers)}
        if segments == ("cluster", "resize"):
            self._require_admin(request)
            body = request.json()
            if not isinstance(body, Mapping) or not isinstance(body.get("workers"), int):
                raise HTTPError(
                    400, "bad_field", "'workers' must be an integer", field="workers"
                )
            try:
                target = await self.resize(body["workers"])
            except ValueError as exc:
                raise HTTPError(400, "bad_field", str(exc), field="workers") from None
            return 200, {"workers": target}
        raise HTTPError(404, "not_found", f"no cluster endpoint at {request.path!r}")

    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HTTPError as exc:
                    writer.write(json_response(exc.status, exc.payload(), keep_alive=False))
                    await writer.drain()
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if request is None:
                    break
                try:
                    status, payload = await self._dispatch_control(request)
                except HTTPError as exc:
                    status, payload = exc.status, exc.payload()
                except Exception as exc:
                    logger.exception(
                        "unhandled error on cluster control %s %s",
                        request.method, request.path,
                    )
                    status = 500
                    payload = {
                        "error": {
                            "code": "internal_error",
                            "message": f"{type(exc).__name__} while serving the request",
                        }
                    }
                if isinstance(payload, str):  # pre-rendered text (``/metrics``)
                    response = render_response(
                        status,
                        payload.encode("utf-8"),
                        content_type="text/plain; charset=utf-8",
                        keep_alive=request.keep_alive,
                    )
                else:
                    response = json_response(status, payload, keep_alive=request.keep_alive)
                try:
                    writer.write(response)
                    await writer.drain()
                except ConnectionError:
                    break
                if not request.keep_alive:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
