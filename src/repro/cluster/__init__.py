"""Multi-process scale-out tier: prefork supervisor, fleet metrics, balancer.

See :mod:`repro.cluster.supervisor` for the architecture overview.
"""

from repro.cluster.balancer import ClusterBalancer, HashRing
from repro.cluster.metrics import (
    merge_counter_dicts,
    merge_health_snapshots,
    merge_latency_snapshots,
)
from repro.cluster.supervisor import (
    ClusterHandle,
    ClusterSupervisor,
    Worker,
    has_reuseport,
)

__all__ = [
    "ClusterBalancer",
    "ClusterHandle",
    "ClusterSupervisor",
    "HashRing",
    "Worker",
    "has_reuseport",
    "merge_counter_dicts",
    "merge_health_snapshots",
    "merge_latency_snapshots",
]
