"""Consistent-hash front balancer — the no-``SO_REUSEPORT`` fallback tier.

On platforms where the kernel cannot spread one listening port across
worker processes (``SO_REUSEPORT`` missing), :class:`ClusterBalancer`
provides the same contract in user space: one public address, N worker
back-ends, and **routing-key affinity** — a request carrying a routing
``key`` always lands on the same worker (while the member set is stable),
so per-worker result caches stay as hot as a single server's.

The balancer is a thin L7 relay over the repro wire protocol: it parses
each request off the client connection
(:func:`repro.server.protocol.read_request`), picks a back-end on the
:class:`HashRing` (keyless requests round-robin), replays the request on a
pooled keep-alive back-end connection
(:class:`repro.loadgen.client.ConnectionPool` — which transparently
retries once when an idle pooled socket turns out to have been closed by a
draining worker), and relays the response.  Back-ends can be added and
removed live — how the supervisor rolls workers through restarts with the
balancer in front.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import logging
import threading
from bisect import bisect_right
from typing import Callable, Iterable

from repro.gateway.policies import derive_request_key as _derive_request_key
from repro.loadgen.client import ConnectionPool
from repro.server.protocol import (
    HTTPError,
    HTTPRequest,
    json_response,
    read_request,
    render_response,
)
from repro.trace import TRACE_HEADER, TraceStore, Tracer, format_trace_header

logger = logging.getLogger(__name__)

#: Headers never replayed to a back-end (re-framed per hop).
_HOP_HEADERS = frozenset({"host", "content-length", "connection", "transfer-encoding"})


def _point(data: bytes) -> int:
    """A stable 64-bit ring position (BLAKE2b, platform-independent)."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class HashRing:
    """Consistent hashing with virtual nodes over named members.

    Each member owns ``replicas`` pseudo-random points on a 64-bit ring;
    :meth:`lookup` maps a key to the owner of the first point at or after
    the key's position.  Adding or removing one member remaps only the
    keys in that member's arcs (~1/N of the key space) — the property that
    keeps per-worker caches warm through fleet resizes.
    """

    def __init__(self, members: Iterable[str] = (), *, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self._replicas = replicas
        self._members: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for member in members:
            self.add(member)

    @property
    def members(self) -> tuple[str, ...]:
        return tuple(sorted(self._members))

    def add(self, member: str) -> None:
        if member in self._members:
            return
        self._members.add(member)
        for replica in range(self._replicas):
            position = _point(f"{member}#{replica}".encode("utf-8"))
            self._points.append((position, member))
        self._points.sort()

    def remove(self, member: str) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        self._points = [p for p in self._points if p[1] != member]

    def lookup(self, key: str) -> str | None:
        """The member owning *key*; ``None`` when the ring is empty."""
        if not self._points:
            return None
        position = _point(key.encode("utf-8"))
        index = bisect_right(self._points, (position, ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]


class BalancerHandle:
    """Control handle for a balancer running in a background thread."""

    def __init__(self, balancer: "ClusterBalancer", thread: threading.Thread) -> None:
        self.balancer = balancer
        self._thread = thread

    @property
    def port(self) -> int:
        return self.balancer.port

    def stop(self, timeout: float = 30.0) -> None:
        self.balancer.request_stop()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError(f"balancer did not stop within {timeout}s")


class ClusterBalancer:
    """One public port relaying requests to a mutable set of back-ends."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 64,
        max_header_bytes: int = 16384,
        max_body_bytes: int = 1048576,
        trace_sample: float | None = 1.0,
        trace_slow_ms: float = 250.0,
        trace_seed: int = 0,
        trace_capacity: int = 256,
    ) -> None:
        self.host = host
        self.port = port
        self.max_header_bytes = max_header_bytes
        self.max_body_bytes = max_body_bytes
        #: Tracing mirrors the worker servers: the balancer starts each
        #: cross-hop trace, injects the ``X-Repro-Trace`` header so the
        #: chosen worker adopts the same id, and keeps its own relay spans.
        self.tracer = Tracer(
            seed=trace_seed,
            sample=trace_sample if trace_sample is not None else 0.0,
            slow_ms=trace_slow_ms,
            enabled=trace_sample is not None,
        )
        self.traces = TraceStore(trace_capacity, slow_ms=trace_slow_ms)
        self.ring = HashRing(replicas=replicas)
        self._addresses: dict[str, tuple[str, int]] = {}
        self._pools: dict[str, ConnectionPool] = {}
        self._round_robin = itertools.count()
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # membership (call from the serving loop / supervisor task)
    # ------------------------------------------------------------------
    def add_backend(self, name: str, host: str, port: int) -> None:
        self._addresses[name] = (host, port)
        self.ring.add(name)

    def remove_backend(self, name: str) -> None:
        """Drop *name* from routing; its pooled connections close."""
        self.ring.remove(name)
        self._addresses.pop(name, None)
        pool = self._pools.pop(name, None)
        if pool is not None:
            pool.close()

    @property
    def backends(self) -> tuple[str, ...]:
        return self.ring.members

    # ------------------------------------------------------------------
    # lifecycle (mirrors ModelServer)
    # ------------------------------------------------------------------
    async def serve(self, ready: Callable[[], None] | None = None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=max(self.max_header_bytes, 65536),
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("cluster balancer listening on %s:%d", self.host, self.port)
        if ready is not None:
            ready()
        try:
            await self._stop_event.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            for pool in self._pools.values():
                pool.close()
            self._pools.clear()

    def request_stop(self) -> None:
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass

    def start_in_thread(self, *, timeout: float = 30.0) -> BalancerHandle:
        ready = threading.Event()
        failures: list[BaseException] = []

        def runner() -> None:
            try:
                asyncio.run(self.serve(ready=ready.set))
            except BaseException as exc:
                failures.append(exc)
            finally:
                ready.set()

        thread = threading.Thread(target=runner, name="repro-balancer", daemon=True)
        thread.start()
        if not ready.wait(timeout):
            raise TimeoutError(f"balancer failed to start within {timeout}s")
        if failures:
            raise failures[0]
        return BalancerHandle(self, thread)

    # ------------------------------------------------------------------
    # relay
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        max_header_bytes=self.max_header_bytes,
                        max_body_bytes=self.max_body_bytes,
                    )
                except HTTPError as exc:
                    writer.write(json_response(exc.status, exc.payload(), keep_alive=False))
                    await writer.drain()
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if request is None:
                    break
                try:
                    response = await self._relay(request)
                except HTTPError as exc:
                    response = json_response(
                        exc.status, exc.payload(), keep_alive=request.keep_alive
                    )
                try:
                    writer.write(response)
                    await writer.drain()
                except ConnectionError:
                    break
                if not request.keep_alive:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    def _routing_key(self, request: HTTPRequest) -> str | None:
        """The affinity key of *request*: ``key``, or the first of ``keys``."""
        if not request.body:
            return None
        try:
            payload = json.loads(request.body)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        key = payload.get("key")
        if isinstance(key, str):
            return key
        keys = payload.get("keys")
        if isinstance(keys, list) and keys and isinstance(keys[0], str):
            return keys[0]
        return None

    def _pick_backend(self, request: HTTPRequest) -> str:
        members = self.ring.members
        if not members:
            raise HTTPError(503, "no_backends", "no workers are available")
        key = self._routing_key(request)
        if key is not None:
            chosen = self.ring.lookup(key)
            if chosen is not None:
                return chosen
        return members[next(self._round_robin) % len(members)]

    @staticmethod
    def _trace_key(payload) -> str:
        """The key a trace id is derived from: the explicit routing key when
        present, else the content-derived key of the (first) sequence — the
        same derivation the worker gateway uses, so ids stay deterministic
        for a seeded scenario."""
        if isinstance(payload, dict):
            key = payload.get("key")
            if isinstance(key, str):
                return key
            keys = payload.get("keys")
            if isinstance(keys, list) and keys and isinstance(keys[0], str):
                return keys[0]
            for field in ("sequence", "sequences"):
                value = payload.get(field)
                if isinstance(value, list) and value:
                    item = value[0] if field == "sequences" else value
                    if isinstance(item, list):
                        return _derive_request_key(str(token) for token in item)
                    return _derive_request_key(str(token) for token in value)
        return ""

    async def _relay(self, request: HTTPRequest) -> bytes:
        backend = self._pick_backend(request)
        host, port = self._addresses[backend]
        pool = self._pools.get(backend)
        if pool is None:
            pool = self._pools[backend] = ConnectionPool(host, port)
        payload = None
        if request.body:
            try:
                payload = json.loads(request.body)
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise HTTPError(
                    400, "invalid_json", f"request body is not valid JSON: {exc}"
                ) from None
        headers = {
            name: value
            for name, value in request.headers.items()
            if name not in _HOP_HEADERS
        }
        segments = request.segments
        trace = span = None
        if (
            self.tracer.enabled
            and len(segments) == 3
            and segments[0] == "routes"
            and segments[2] == "predict"
        ):
            trace = self.tracer.begin(self._trace_key(payload))
            if trace is not None:
                span = trace.start_span(
                    "balancer.relay",
                    attrs={"backend": backend, "route": segments[1]},
                )
                # The worker adopts this id, so one trace stitches the
                # balancer hop to the worker's server/gateway/service spans.
                headers[TRACE_HEADER] = format_trace_header(trace, parent=span.span_id)
        try:
            response = await pool.request(request.method, request.path, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            if trace is not None:
                trace.error = True
                span.attrs["error"] = type(exc).__name__
                trace.end_span(span)
                self.traces.offer(trace)
            raise HTTPError(
                502, "bad_backend", f"worker {backend} failed: {type(exc).__name__}"
            ) from None
        extra_headers = None
        if trace is not None:
            if response.status >= 400:
                trace.error = True
                span.attrs["status"] = response.status
            trace.end_span(span)
            self.traces.offer(trace)
            extra_headers = {TRACE_HEADER: trace.trace_id}
        return render_response(
            response.status,
            response.body,
            content_type=response.headers.get("content-type", "application/json"),
            keep_alive=request.keep_alive,
            extra_headers=extra_headers,
        )
