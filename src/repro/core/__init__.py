"""Core public API of the reproduction.

* :class:`~repro.core.classifier.CuisineClassifier` — the high-level
  "fit a named model on a corpus and classify recipes" entry point;
* :class:`~repro.core.experiment.ExperimentConfig` /
  :class:`~repro.core.experiment.ExperimentRunner` — the Table IV experiment
  harness (generate corpus, split 7:1:2, train every requested model, collect
  metrics);
* :mod:`~repro.core.metrics` — the Table IV metric set;
* :mod:`~repro.core.results` — serialisable result records.
"""

from repro.core.classifier import CuisineClassifier
from repro.core.experiment import ExperimentConfig, ExperimentRunner, run_table_iv_experiment
from repro.core.metrics import (
    ClassificationMetrics,
    accuracy_score,
    confusion_matrix,
    evaluate_predictions,
    log_loss,
    precision_recall_f1,
)
from repro.core.results import ExperimentResult, ModelResult

__all__ = [
    "CuisineClassifier",
    "ExperimentConfig",
    "ExperimentRunner",
    "run_table_iv_experiment",
    "ClassificationMetrics",
    "accuracy_score",
    "confusion_matrix",
    "evaluate_predictions",
    "log_loss",
    "precision_recall_f1",
    "ExperimentResult",
    "ModelResult",
]
