"""High-level cuisine classification API.

:class:`CuisineClassifier` is the entry point a downstream user of the library
works with: pick a model by name (any Table IV column), fit it on a corpus,
then classify new recipes given as raw item sequences.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.metrics import ClassificationMetrics
from repro.data.cuisines import CONTINENT_OF_CUISINE, CUISINES
from repro.data.recipedb import RecipeDB
from repro.data.schema import Recipe
from repro.data.splits import DatasetSplits, train_val_test_split
from repro.models.base import CuisineModel
from repro.models.lstm_classifier import LSTMClassifierConfig
from repro.models.registry import MODEL_NAMES, create_model
from repro.models.transformer_classifier import TransformerClassifierConfig


class CuisineClassifier:
    """Train a named model and classify recipes.

    Example:
        >>> from repro.data import generate_recipedb
        >>> from repro.core import CuisineClassifier
        >>> corpus = generate_recipedb(scale=0.01, seed=1)
        >>> clf = CuisineClassifier("logreg")
        >>> clf.fit(corpus)                                   # doctest: +ELLIPSIS
        <repro.core.classifier.CuisineClassifier object at ...>
        >>> isinstance(clf.classify(["onion", "garlic", "stir", "add", "wok"]), str)
        True
    """

    def __init__(
        self,
        model_name: str = "roberta",
        label_space: Sequence[str] = CUISINES,
        lstm_config: LSTMClassifierConfig | None = None,
        transformer_config: TransformerClassifierConfig | None = None,
        **model_kwargs,
    ) -> None:
        if model_name not in MODEL_NAMES:
            raise KeyError(f"unknown model {model_name!r}; choose one of {MODEL_NAMES}")
        self.model_name = model_name
        self.label_space = tuple(label_space)
        self._lstm_config = lstm_config
        self._transformer_config = transformer_config
        self._model_kwargs = model_kwargs
        self.model: CuisineModel | None = None
        self.splits: DatasetSplits | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        corpus: RecipeDB,
        validation: RecipeDB | None = None,
        holdout: bool = True,
        seed: int = 13,
    ) -> "CuisineClassifier":
        """Fit the configured model on *corpus*.

        Args:
            corpus: Training corpus.  When *validation* is not given and
                *holdout* is true, the corpus is split 7:1:2 and the train /
                validation parts are used (the test part is kept for
                :meth:`evaluate_holdout`).
            validation: Explicit validation corpus.
            holdout: Whether to carve out validation/test splits.
            seed: Split seed.
        """
        self.model = create_model(
            self.model_name,
            label_space=self.label_space,
            lstm_config=self._lstm_config,
            transformer_config=self._transformer_config,
            **self._model_kwargs,
        )
        if validation is not None or not holdout:
            self.splits = None
            self.model.fit(corpus, validation)
        else:
            self.splits = train_val_test_split(corpus, seed=seed)
            self.model.fit(self.splits.train, self.splits.validation)
        return self

    def _require_fitted(self) -> CuisineModel:
        if self.model is None:
            raise RuntimeError("CuisineClassifier is not fitted; call fit() first")
        return self.model

    # ------------------------------------------------------------------
    def classify(self, sequence: Iterable[str]) -> str:
        """Predict the cuisine of a single recipe item sequence."""
        return self.classify_many([sequence])[0]

    def classify_many(self, sequences: Iterable[Iterable[str]]) -> list[str]:
        """Predict cuisines for several raw recipe sequences."""
        model = self._require_fitted()
        corpus = self._as_corpus(sequences)
        return model.predict(corpus)

    def predict_proba(self, sequences: Iterable[Iterable[str]]) -> np.ndarray:
        """Class-probability matrix for raw recipe sequences."""
        model = self._require_fitted()
        return model.predict_proba(self._as_corpus(sequences))

    def top_cuisines(self, sequence: Iterable[str], k: int = 3) -> list[tuple[str, float]]:
        """The *k* most probable cuisines for one recipe, with probabilities."""
        model = self._require_fitted()
        probabilities = model.predict_proba(self._as_corpus([sequence]))[0]
        order = np.argsort(probabilities)[::-1][:k]
        return [(model.label_space[i], float(probabilities[i])) for i in order]

    # ------------------------------------------------------------------
    def evaluate(self, corpus: RecipeDB) -> ClassificationMetrics:
        """Table IV metrics of the fitted model on *corpus*."""
        return self._require_fitted().evaluate(corpus)

    def evaluate_holdout(self) -> ClassificationMetrics:
        """Metrics on the internally held-out test split (requires ``holdout=True``)."""
        if self.splits is None:
            raise RuntimeError("no holdout split available; fit() was called with holdout=False")
        return self.evaluate(self.splits.test)

    # ------------------------------------------------------------------
    def _as_corpus(self, sequences: Iterable[Iterable[str]]) -> RecipeDB:
        """Wrap raw sequences into a throwaway corpus for prediction."""
        placeholder = self.label_space[0]
        recipes = [
            Recipe(
                recipe_id=index + 1,
                cuisine=placeholder,
                continent=CONTINENT_OF_CUISINE.get(placeholder, "Unknown"),
                sequence=tuple(sequence),
            )
            for index, sequence in enumerate(sequences)
        ]
        if not recipes:
            raise ValueError("no sequences to classify")
        return RecipeDB(recipes=recipes)
