"""The Table IV experiment harness.

An experiment is: generate (or accept) a RecipeDB corpus, split it 7:1:2 as
the paper does, train every requested model on the training split, and collect
the Table IV metric set on the test split.  Two ablation knobs reproduce the
discussion in the paper's conclusions: ``shuffle_sequences`` destroys the
sequential order (isolating how much of the sequence models' advantage comes
from order), and ``min_cuisine_recipes`` drops rare cuisines (the class
imbalance trade-off).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.results import ExperimentResult, ModelResult
from repro.data.generator import GeneratorConfig, RecipeDBGenerator
from repro.data.recipedb import RecipeDB
from repro.data.schema import Recipe
from repro.data.splits import DatasetSplits, train_val_test_split
from repro.models.registry import MODEL_NAMES, create_model
from repro.models.lstm_classifier import LSTMClassifierConfig
from repro.models.transformer_classifier import TransformerClassifierConfig
from repro.pipeline.engine import CorpusEngine, EngineConfig
from repro.pipeline.store import FeatureStore


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one experiment run.

    Attributes:
        models: Registry names of the models to train (default: all seven
            Table IV models).
        scale: Synthetic-corpus scale when no corpus is supplied.
        seed: Seed for generation, splitting and model initialisation.
        shuffle_sequences: If true, every recipe sequence is shuffled (with a
            per-recipe deterministic permutation) before training and
            evaluation — the sequence-order ablation.
        min_cuisine_recipes: Drop cuisines with fewer recipes than this
            before splitting — the class-imbalance ablation (0 keeps all).
        lstm_config / transformer_config: Optional model-size overrides.
        statistical_kwargs: Extra constructor arguments per statistical model.
        n_jobs: Number of models trained concurrently (1 = sequential).
            Models are independent given the shared feature store, so any
            value up to ``len(models)`` is safe; results are identical to the
            sequential order.
        n_workers: Worker processes used by the sharded corpus engine for
            the preprocessing pass (1 = in-process).  Output artifacts are
            byte-identical for any value.
        shard_size: Recipes per corpus shard in the engine's partition.
        cache_dir: Optional directory for on-disk feature-store persistence
            (preprocessing and per-shard artifacts survive across runs /
            processes).
        export_dir: Optional directory to export one model bundle per
            trained model into (``<export_dir>/<model_name>/``), making
            train -> export -> serve a single flow: the bundles are what
            :meth:`repro.serving.PredictionService.from_export_dir` loads.
    """

    models: tuple[str, ...] = MODEL_NAMES
    scale: float = 0.02
    seed: int = 7
    shuffle_sequences: bool = False
    min_cuisine_recipes: int = 0
    lstm_config: LSTMClassifierConfig | None = None
    transformer_config: TransformerClassifierConfig | None = None
    statistical_kwargs: dict = field(default_factory=dict)
    n_jobs: int = 1
    n_workers: int = 1
    shard_size: int = 512
    cache_dir: str | None = None
    export_dir: str | None = None

    def __post_init__(self) -> None:
        unknown = set(self.models) - set(MODEL_NAMES)
        if unknown:
            raise ValueError(f"unknown models requested: {sorted(unknown)}")
        if not self.models:
            raise ValueError("at least one model must be requested")
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        # shard_size / n_workers bounds are validated by EngineConfig.
        EngineConfig(shard_size=self.shard_size, n_workers=self.n_workers)


def shuffle_recipe_sequences(corpus: RecipeDB, seed: int = 0) -> RecipeDB:
    """Return a corpus whose recipe sequences are randomly permuted.

    Used by the sequence-order ablation: bag-of-words content is preserved
    exactly, only the order information is destroyed.
    """
    rng = np.random.default_rng(seed)
    shuffled: list[Recipe] = []
    for recipe in corpus:
        permutation = rng.permutation(len(recipe.sequence))
        sequence = tuple(recipe.sequence[i] for i in permutation)
        kinds = tuple(recipe.kinds[i] for i in permutation) if recipe.kinds else ()
        shuffled.append(
            Recipe(
                recipe_id=recipe.recipe_id,
                cuisine=recipe.cuisine,
                continent=recipe.continent,
                sequence=sequence,
                kinds=kinds,
            )
        )
    return RecipeDB(recipes=shuffled, generator_config=corpus.generator_config)


class ExperimentRunner:
    """Runs the Table IV experiment end to end."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        corpus: RecipeDB | None = None,
        store: FeatureStore | None = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        self._corpus = corpus
        self.splits: DatasetSplits | None = None
        #: Shared across every model of the run (and across runs when the
        #: runner is reused): preprocessing happens once per configuration.
        self.store = store if store is not None else FeatureStore(cache_dir=self.config.cache_dir)
        #: Sharded corpus engine over the shared store: the preprocessing
        #: pass runs shard-wise (process-parallel with ``n_workers > 1``)
        #: and reuses per-shard artifacts across runs and grown corpora.
        self.engine = CorpusEngine(
            self.store,
            EngineConfig(
                shard_size=self.config.shard_size, n_workers=self.config.n_workers
            ),
        )

    # ------------------------------------------------------------------
    def prepare_corpus(self) -> RecipeDB:
        """Generate (or reuse) the corpus and apply the ablation transforms."""
        corpus = self._corpus
        if corpus is None:
            generator_config = GeneratorConfig(scale=self.config.scale, seed=self.config.seed)
            corpus = RecipeDBGenerator(generator_config).generate()
        if self.config.min_cuisine_recipes > 0:
            corpus = corpus.drop_rare_cuisines(self.config.min_cuisine_recipes)
        if self.config.shuffle_sequences:
            corpus = shuffle_recipe_sequences(corpus, seed=self.config.seed)
        return corpus

    def prepare_splits(self) -> DatasetSplits:
        """The 7:1:2 stratified splits of the prepared corpus."""
        if self.splits is None:
            corpus = self.prepare_corpus()
            self.splits = train_val_test_split(corpus, seed=self.config.seed)
        return self.splits

    # ------------------------------------------------------------------
    def run(self, label_space: Sequence[str] | None = None) -> ExperimentResult:
        """Train and evaluate every requested model.

        Args:
            label_space: Cuisine label space; defaults to the cuisines present
                in the prepared corpus.

        Returns:
            The collected :class:`~repro.core.results.ExperimentResult`.
        """
        splits = self.prepare_splits()
        if label_space is None:
            present = set(splits.train.cuisines) | set(splits.validation.cuisines) | set(
                splits.test.cuisines
            )
            label_space = tuple(sorted(present))

        result = ExperimentResult(
            config={
                "models": list(self.config.models),
                "scale": self.config.scale,
                "seed": self.config.seed,
                "shuffle_sequences": self.config.shuffle_sequences,
                "min_cuisine_recipes": self.config.min_cuisine_recipes,
                "n_classes": len(label_space),
                "n_jobs": self.config.n_jobs,
                "n_workers": self.config.n_workers,
                "shard_size": self.config.shard_size,
                "export_dir": self.config.export_dir,
            },
            split_sizes=splits.summary(),
        )
        models = {name: self._create_model(name, label_space) for name in self.config.models}

        # Materialise the shared artifacts up front — preprocessing (sharded
        # and, with n_workers > 1, process-parallel), fitted vectorizers /
        # vocabularies, transformed matrices, encoded batches and labels —
        # so concurrent model training resolves pure cache hits.
        corpora = [c for c in (splits.train, splits.validation, splits.test) if len(c) > 0]
        try:
            self.engine.warm(
                corpora,
                [model.feature_spec() for model in models.values()],
                train_corpus=splits.train,
                label_space=label_space,
            )
        finally:
            # The worker pool is only needed for the warm-up's preprocessing
            # pass; release it so runners never leak idle processes.  The
            # engine stays usable — a later run lazily recreates the pool.
            self.engine.close()

        n_jobs = min(self.config.n_jobs, len(models))
        if n_jobs > 1:
            with ThreadPoolExecutor(max_workers=n_jobs) as pool:
                futures = {
                    name: pool.submit(self._train_and_evaluate, model, splits)
                    for name, model in models.items()
                }
                for name in self.config.models:
                    result.add(futures[name].result())
        else:
            for model in models.values():
                result.add(self._train_and_evaluate(model, splits))
        return result

    def run_model(
        self, name: str, splits: DatasetSplits, label_space: Sequence[str]
    ) -> ModelResult:
        """Train and evaluate a single named model."""
        return self._train_and_evaluate(self._create_model(name, label_space), splits)

    def _create_model(self, name: str, label_space: Sequence[str]):
        kwargs = dict(self.config.statistical_kwargs.get(name, {}))
        return create_model(
            name,
            label_space=label_space,
            lstm_config=self.config.lstm_config,
            transformer_config=self.config.transformer_config,
            **kwargs,
        )

    def _train_and_evaluate(self, model, splits: DatasetSplits) -> ModelResult:
        name = model.name
        start = time.perf_counter()
        model.fit(splits.train, splits.validation, store=self.store)
        elapsed = time.perf_counter() - start

        metrics = model.evaluate(splits.test)
        validation_metrics = (
            model.evaluate(splits.validation) if len(splits.validation) else None
        )
        history = {}
        extra: dict = {}
        if self.config.export_dir is not None:
            bundle_path = model.save_bundle(Path(self.config.export_dir) / name)
            extra["bundle_path"] = str(bundle_path)
        if getattr(model, "history", None) is not None:
            history = model.history.as_dict()
        pretraining = getattr(model, "pretraining_result", None)
        if pretraining is not None:
            extra["mlm_losses"] = list(pretraining.losses_per_epoch)
            extra["mlm_steps"] = pretraining.total_steps
        return ModelResult(
            model_name=name,
            metrics=metrics,
            validation_metrics=validation_metrics,
            history=history,
            train_seconds=elapsed,
            extra=extra,
        )


def run_table_iv_experiment(
    models: Sequence[str] = MODEL_NAMES,
    scale: float = 0.02,
    seed: int = 7,
    corpus: RecipeDB | None = None,
    lstm_config: LSTMClassifierConfig | None = None,
    transformer_config: TransformerClassifierConfig | None = None,
    n_jobs: int = 1,
    n_workers: int = 1,
    cache_dir: str | None = None,
    export_dir: str | None = None,
) -> ExperimentResult:
    """Convenience wrapper running the full Table IV experiment.

    Args:
        models: Which Table IV models to include.
        scale: Synthetic-corpus scale (ignored when *corpus* is given).
        seed: PRNG seed.
        corpus: Pre-built corpus to use instead of generating one.
        lstm_config / transformer_config: Optional model-size overrides.
        n_jobs: Models trained concurrently (1 = sequential).
        n_workers: Corpus-engine worker processes for preprocessing.
        cache_dir: Optional on-disk feature-store cache directory.
        export_dir: Optional directory to export one bundle per model into.

    Returns:
        The experiment result with one :class:`ModelResult` per model.
    """
    config = ExperimentConfig(
        models=tuple(models),
        scale=scale,
        seed=seed,
        lstm_config=lstm_config,
        transformer_config=transformer_config,
        n_jobs=n_jobs,
        n_workers=n_workers,
        cache_dir=cache_dir,
        export_dir=export_dir,
    )
    return ExperimentRunner(config, corpus=corpus).run()
