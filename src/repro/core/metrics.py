"""Evaluation metrics reported in Table IV of the paper.

For every model the paper reports accuracy, loss (cross-entropy), precision,
recall and F1 score.  Precision/recall/F1 are macro-averaged over classes,
which matches the magnitude relationship between the paper's accuracy and
P/R/F1 columns on the imbalanced 26-class problem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ClassificationMetrics:
    """The five Table IV metrics plus the confusion matrix."""

    accuracy: float
    loss: float
    precision: float
    recall: float
    f1: float
    confusion: np.ndarray

    def as_dict(self) -> dict[str, float]:
        """The scalar metrics as a plain dict (confusion matrix excluded)."""
        return {
            "accuracy": self.accuracy,
            "loss": self.loss,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }

    def table_row(self) -> dict[str, float]:
        """Row formatted like Table IV (accuracy in percent)."""
        return {
            "Accuracy": round(self.accuracy * 100.0, 2),
            "Loss": round(self.loss, 2),
            "Precision": round(self.precision, 2),
            "Recall": round(self.recall, 2),
            "F1 Score": round(self.f1, 2),
        }


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    _check_lengths(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """Confusion matrix with rows = true class, columns = predicted class."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    _check_lengths(y_true, y_pred)
    if n_classes < 1:
        raise ValueError("n_classes must be positive")
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int, average: str = "macro"
) -> tuple[float, float, float]:
    """Precision, recall and F1 with macro or weighted averaging.

    Classes absent from ``y_true`` are excluded from macro averaging (their
    recall is undefined), matching scikit-learn's behaviour with
    ``zero_division=0`` in the cases exercised here.
    """
    if average not in ("macro", "weighted"):
        raise ValueError(f"average must be 'macro' or 'weighted', got {average!r}")
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    true_positive = np.diag(matrix).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    actual = matrix.sum(axis=1).astype(np.float64)

    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, true_positive / predicted, 0.0)
        recall = np.where(actual > 0, true_positive / actual, 0.0)
        f1 = np.where(
            precision + recall > 0, 2 * precision * recall / (precision + recall), 0.0
        )

    present = actual > 0
    if not present.any():
        return 0.0, 0.0, 0.0
    if average == "macro":
        return (
            float(precision[present].mean()),
            float(recall[present].mean()),
            float(f1[present].mean()),
        )
    weights = actual[present] / actual[present].sum()
    return (
        float((precision[present] * weights).sum()),
        float((recall[present] * weights).sum()),
        float((f1[present] * weights).sum()),
    )


def log_loss(y_true: np.ndarray, probabilities: np.ndarray, eps: float = 1e-12) -> float:
    """Mean categorical cross-entropy of predicted *probabilities*."""
    y_true = np.asarray(y_true, dtype=np.int64)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 2:
        raise ValueError("probabilities must be 2-D (n_samples, n_classes)")
    _check_lengths(y_true, probabilities)
    clipped = np.clip(probabilities, eps, 1.0)
    clipped = clipped / clipped.sum(axis=1, keepdims=True)
    picked = clipped[np.arange(len(y_true)), y_true]
    return float(-np.mean(np.log(picked)))


def evaluate_predictions(
    y_true: np.ndarray,
    probabilities: np.ndarray,
    n_classes: int | None = None,
    average: str = "macro",
) -> ClassificationMetrics:
    """Compute the full Table IV metric set from predicted probabilities."""
    y_true = np.asarray(y_true, dtype=np.int64)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if n_classes is None:
        n_classes = probabilities.shape[1]
    y_pred = probabilities.argmax(axis=1)
    precision, recall, f1 = precision_recall_f1(y_true, y_pred, n_classes, average=average)
    return ClassificationMetrics(
        accuracy=accuracy_score(y_true, y_pred),
        loss=log_loss(y_true, probabilities),
        precision=precision,
        recall=recall,
        f1=f1,
        confusion=confusion_matrix(y_true, y_pred, n_classes),
    )


def _check_lengths(y_true: np.ndarray, other: np.ndarray) -> None:
    if len(y_true) != len(other):
        raise ValueError(f"length mismatch: {len(y_true)} != {len(other)}")
    if len(y_true) == 0:
        raise ValueError("cannot evaluate empty predictions")
