"""Serialisable result records for experiments."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.metrics import ClassificationMetrics


@dataclass
class ModelResult:
    """Result of training and evaluating one model.

    Attributes:
        model_name: Registry name of the model.
        metrics: Test-set metrics (the Table IV row).
        validation_metrics: Validation-set metrics, when computed.
        history: Per-epoch training history of neural models (empty for the
            statistical models).
        train_seconds: Wall-clock training time.
        extra: Free-form extras (e.g. MLM pretraining losses).
    """

    model_name: str
    metrics: ClassificationMetrics
    validation_metrics: ClassificationMetrics | None = None
    history: dict[str, list[float]] = field(default_factory=dict)
    train_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serialisable view (confusion matrices as nested lists)."""
        payload = {
            "model_name": self.model_name,
            "metrics": self.metrics.as_dict(),
            "confusion": self.metrics.confusion.tolist(),
            "history": self.history,
            "train_seconds": self.train_seconds,
            "extra": self.extra,
        }
        if self.validation_metrics is not None:
            payload["validation_metrics"] = self.validation_metrics.as_dict()
        return payload


@dataclass
class ExperimentResult:
    """Results of a full experiment run (one corpus, several models)."""

    config: dict
    split_sizes: dict[str, int]
    model_results: dict[str, ModelResult] = field(default_factory=dict)

    def add(self, result: ModelResult) -> None:
        """Record *result* under its model name."""
        self.model_results[result.model_name] = result

    def accuracy_ranking(self) -> list[tuple[str, float]]:
        """Models sorted by descending test accuracy."""
        pairs = [
            (name, result.metrics.accuracy) for name, result in self.model_results.items()
        ]
        return sorted(pairs, key=lambda pair: -pair[1])

    def best_model(self) -> str:
        """Name of the model with the highest test accuracy."""
        ranking = self.accuracy_ranking()
        if not ranking:
            raise ValueError("experiment has no model results")
        return ranking[0][0]

    def to_dict(self) -> dict:
        """JSON-serialisable view of the whole experiment."""
        return {
            "config": self.config,
            "split_sizes": self.split_sizes,
            "models": {name: result.to_dict() for name, result in self.model_results.items()},
        }

    def save_json(self, path: str | Path) -> Path:
        """Write the experiment result to *path* as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")
        return path

    @classmethod
    def load_json(cls, path: str | Path) -> dict:
        """Load a previously saved result as a plain dict."""
        return json.loads(Path(path).read_text(encoding="utf-8"))
