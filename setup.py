"""Packaging for the conf_icde_SharmaUB20 reproduction.

Kept as a plain ``setup.py`` (no build backend requirements) so editable
installs work in offline environments without wheel/pyproject tooling.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of conf_icde_SharmaUB20 grown into a full "
        "train/serve/deploy stack: feature store, sharded corpus engine, "
        "model bundles, prediction service, deployment gateway, HTTP "
        "serving frontier and load generator."
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    # numpy/scipy are required at runtime but deliberately not pinned here:
    # the CI/image toolchain provides them, and offline installs must not
    # trigger resolution.
    install_requires=[],
    entry_points={
        "console_scripts": [
            "repro-serve = repro.server.cli:main",
            "repro-cluster = repro.cluster.cli:main",
            "repro-eval = repro.eval.cli:main",
        ],
    },
)
