"""Benchmark E2 — Table II: recipes per cuisine.

Regenerates the paper's Table II from the benchmark corpus and checks that the
class distribution is the paper's distribution (scaled): 26 cuisines, Italian
and Mexican the largest classes, Central American and Korean the smallest,
and per-cuisine proportions matching Table II.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_config import BENCH_SCALE
from repro.data.cuisines import CUISINE_RECIPE_COUNTS, TABLE_II_TOTAL_RECIPES
from repro.evaluation.reports import format_table
from repro.evaluation.tables import table_ii


def test_table2_dataset_info(benchmark, bench_corpus):
    rows = benchmark(table_ii, bench_corpus)

    print()
    print(format_table(rows, title="TABLE II - DATASET INFORMATION (measured vs paper)"))

    assert len(rows) == 26
    measured = {row["Cuisine"]: row["Number of Recipes"] for row in rows}
    paper = {row["Cuisine"]: row["Paper Count"] for row in rows}
    assert paper == CUISINE_RECIPE_COUNTS

    # Every cuisine is present.
    assert all(count > 0 for count in measured.values())

    # The biggest and smallest classes match the paper.
    assert max(measured, key=measured.get) == "Italian"
    top_four = sorted(measured, key=measured.get, reverse=True)[:4]
    assert "Mexican" in top_four
    bottom_two = sorted(measured, key=measured.get)[:2]
    assert "Central American" in bottom_two

    # Proportions follow Table II (within rounding induced by the small scale).
    for cuisine, count in measured.items():
        expected = CUISINE_RECIPE_COUNTS[cuisine] * BENCH_SCALE
        assert count == pytest.approx(expected, abs=max(4.0, 0.1 * expected))


def test_table2_total_matches_scaled_paper_total(benchmark, bench_corpus):
    total = benchmark(lambda: len(bench_corpus))
    expected = TABLE_II_TOTAL_RECIPES * BENCH_SCALE
    assert total == pytest.approx(expected, rel=0.05)
