"""Session-scoped fixtures shared by every benchmark.

The expensive work — generating the corpus and training all seven Table IV
models — happens exactly once per ``pytest benchmarks/`` invocation; the
individual benchmarks then time the (cheap) regeneration of each table/figure
from those results and assert that the *shape* of the paper's findings holds.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_config import (
    BENCH_SCALE,
    BENCH_SEED,
    STATISTICAL_KWARGS,
    lstm_config,
    transformer_config,
)
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data.generator import GeneratorConfig, RecipeDBGenerator
from repro.data.splits import train_val_test_split
from repro.models.registry import MODEL_NAMES


def pytest_configure(config):
    """Register the benchmark smoke marker.

    ``pytest benchmarks -m quick`` runs only the fast perf benchmarks (no
    full Table IV training) — the CI smoke job uses exactly that.
    """
    config.addinivalue_line(
        "markers", "quick: fast benchmark, part of the CI smoke subset"
    )


@pytest.fixture(scope="session")
def bench_corpus():
    """The benchmark corpus (Table I-III substrate)."""
    return RecipeDBGenerator(GeneratorConfig(scale=BENCH_SCALE, seed=BENCH_SEED)).generate()


@pytest.fixture(scope="session")
def bench_splits(bench_corpus):
    """7:1:2 splits of the benchmark corpus."""
    return train_val_test_split(bench_corpus, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_runner(bench_corpus):
    """An experiment runner bound to the benchmark corpus and model configs."""
    config = ExperimentConfig(
        models=MODEL_NAMES,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        lstm_config=lstm_config(),
        transformer_config=transformer_config(),
        statistical_kwargs=STATISTICAL_KWARGS,
    )
    return ExperimentRunner(config, corpus=bench_corpus)


@pytest.fixture(scope="session")
def table_iv_result(bench_runner):
    """The full Table IV experiment: train and evaluate all seven models.

    This is the single most expensive fixture of the benchmark suite (several
    minutes at the default scale); every Table IV / figure benchmark reuses it.
    """
    return bench_runner.run()
