"""Corpus-engine performance benchmarks.

Demonstrates the two wins of the sharded execution layer on the same corpus,
with byte-identical outputs in every case:

* **Process parallelism** — mapping the stage chain over shards with worker
  processes beats the sequential in-process pass (multi-core hosts; the
  assertion is skipped on single-core runners where no speedup is possible).
* **Incremental featurization** — after appending recipes to an
  already-featurized corpus, only the new shards are recomputed, which beats
  recomputing the grown corpus from scratch on any host.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import pytest

from benchmarks.bench_config import BENCH_SEED
from repro.data.generator import GeneratorConfig, RecipeDBGenerator
from repro.pipeline.engine import SHARD_KIND, CorpusEngine
from repro.pipeline.fingerprint import stable_hash
from repro.pipeline.store import FeatureStore
from repro.text.pipeline import PipelineConfig

PIPELINE = PipelineConfig(split_items=True)
SHARD_SIZE = 256


@pytest.fixture(scope="module")
def engine_corpus():
    """Large enough that stage work dominates process/pickling overhead."""
    return RecipeDBGenerator(GeneratorConfig(scale=0.05, seed=BENCH_SEED)).generate()


def _timed_tokens(n_workers: int, corpus):
    """(seconds, tokens, digest) of a cold engine pass over *corpus*.

    Best of two runs (each on a fresh store, so both are cold) to damp
    scheduler noise on shared CI runners.
    """
    timings = []
    for _ in range(2):
        store = FeatureStore(max_entries=4096)
        with CorpusEngine(store, shard_size=SHARD_SIZE, n_workers=n_workers) as engine:
            start = time.perf_counter()
            tokens = engine.tokens(corpus, PIPELINE)
            timings.append(time.perf_counter() - start)
    return min(timings), tokens, stable_hash(tokens)


@pytest.mark.quick
def test_perf_parallel_sharding_beats_sequential_with_identical_digests(engine_corpus):
    sequential_seconds, sequential_tokens, sequential_digest = _timed_tokens(
        1, engine_corpus
    )
    parallel_seconds, parallel_tokens, parallel_digest = _timed_tokens(4, engine_corpus)

    # Bitwise equivalence holds regardless of host parallelism.
    assert parallel_tokens == sequential_tokens
    assert parallel_digest == sequential_digest

    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip("single-core host: no parallel speedup is possible")
    if cores >= 4:
        assert parallel_seconds < sequential_seconds, (
            f"parallel shard pass ({parallel_seconds:.3f}s) did not beat the "
            f"sequential pass ({sequential_seconds:.3f}s)"
        )
    else:
        # On 2-3 cores, pool + pickling overhead can eat most of the win;
        # require that parallel execution is at least not pathologically
        # slower while still reporting both timings.
        assert parallel_seconds < sequential_seconds * 1.25, (
            f"parallel shard pass ({parallel_seconds:.3f}s) was much slower than "
            f"the sequential pass ({sequential_seconds:.3f}s) on {cores} cores"
        )


@pytest.mark.quick
def test_perf_incremental_append_beats_full_recompute(engine_corpus):
    # Align the base corpus to the shard size so the append adds exactly one
    # new shard and leaves every existing shard boundary untouched.
    base_length = ((len(engine_corpus) - SHARD_SIZE) // SHARD_SIZE) * SHARD_SIZE
    base = engine_corpus.subset(range(base_length))
    extra = [
        replace(recipe, recipe_id=10**7 + i)
        for i, recipe in enumerate(engine_corpus.recipes[-SHARD_SIZE:])
    ]
    grown = base.extend(extra)

    warm_store = FeatureStore(max_entries=4096)
    warm_engine = CorpusEngine(warm_store, shard_size=SHARD_SIZE)
    warm_engine.tokens(base, PIPELINE)  # featurize the original corpus
    warm_store.reset_stats()

    start = time.perf_counter()
    incremental_tokens = warm_engine.tokens(grown, PIPELINE)
    incremental_seconds = time.perf_counter() - start

    cold_seconds, cold_tokens, _ = _timed_tokens(1, grown)

    # Only the appended shard was computed; every prefix shard was a hit.
    assert warm_store.miss_count(SHARD_KIND) == 1
    assert warm_store.hit_count(SHARD_KIND) == len(base) // SHARD_SIZE
    assert incremental_tokens == cold_tokens
    assert incremental_seconds < cold_seconds, (
        f"incremental refeaturization ({incremental_seconds:.3f}s) did not beat "
        f"a cold recompute ({cold_seconds:.3f}s)"
    )


@pytest.mark.quick
def test_perf_warm_shard_lookup_is_cache_cheap(benchmark, engine_corpus):
    """Re-resolving an already-featurized corpus must be lookup-cheap."""
    store = FeatureStore(max_entries=4096)
    engine = CorpusEngine(store, shard_size=SHARD_SIZE)
    engine.tokens(engine_corpus, PIPELINE)

    tokens = benchmark(engine.tokens, engine_corpus, PIPELINE)
    assert len(tokens) == len(engine_corpus)
    assert store.miss_count("tokens") == 1
