"""Benchmark E3 — Table III: cumulative feature-frequency distribution.

Regenerates the paper's Table III (number of features above/below occurrence
thresholds) plus the corpus sparsity and vocabulary statistics the Dataset
section quotes (20,280 ingredients / 256 processes / 69 utensils, 99.5 %
sparsity, ``add`` as the most frequent item, a huge hapax tail).

Absolute counts depend on the corpus scale; the assertions check the *shape*:
monotone cumulative counts, a dominant head ("add"), and a long tail of
rare features.
"""

from __future__ import annotations

from repro.data.statistics import compute_corpus_statistics
from repro.evaluation.reports import format_table
from repro.evaluation.tables import table_iii


def test_table3_frequency_distribution(benchmark, bench_corpus):
    rows = benchmark(table_iii, bench_corpus)

    print()
    print(format_table(rows, title="TABLE III - FREQUENCY DISTRIBUTION OF FEATURES"))

    assert len(rows) == 20
    high = [row for row in rows if row["Threshold"].startswith(">")]
    low = [row for row in rows if row["Threshold"].startswith("<")]

    # Cumulative counts must be monotone: fewer features exceed higher
    # thresholds; more features fall below higher thresholds.
    high_values = [row["Number of Features"] for row in high]
    low_values = [row["Number of Features"] for row in low]
    assert high_values == sorted(high_values, reverse=True)
    assert low_values == sorted(low_values)

    # The long-tail shape of the paper: far more rare features than frequent ones.
    assert low_values[-1] > high_values[0]


def test_table3_corpus_statistics_shape(benchmark, bench_corpus):
    statistics = benchmark(compute_corpus_statistics, bench_corpus)

    print()
    print(f"sparsity={statistics.sparsity:.4f} (paper 0.9950)  "
          f"most_frequent={statistics.most_frequent_feature!r} x{statistics.most_frequent_count}  "
          f"hapax={statistics.hapax_count}/{statistics.n_unique_features}")

    # "add" is the most frequent item, as in the paper.
    assert statistics.most_frequent_feature == "add"
    # The matrix is highly sparse (paper: 99.5 % at full scale).
    assert statistics.sparsity > 0.95
    # Substructure vocabulary sizes are bounded by the paper's counts.
    assert statistics.n_unique_processes <= 256
    assert statistics.n_unique_utensils <= 69
    # A large hapax tail exists (paper: 11,738 of 20,400 entities occur at most once).
    assert statistics.hapax_count > 0.2 * statistics.n_unique_features
