"""Tracing-overhead benchmarks (CI smoke subset).

Two properties the tracing tentpole promises are held here, measured with
the loadgen harness against a real in-thread server whose model service
time is pinned (an artificial per-pass sleep), so the comparison measures
the instrumentation, not scheduler noise:

* **Head-sampled tracing is cheap** — at a 1% sample rate, closed-loop p50
  latency stays within a few percent of the same server with tracing
  disabled entirely (the ``trace_sample=None`` path, where every request
  pays only an ``is None`` check).
* **Tail sampling is total** — with the head sampler effectively off
  (``trace_sample=0.0``), every slow request and every erroring request is
  still captured and retrievable from ``/debug/traces/<id>``.

The final test writes ``BENCH_trace.json`` at the repo root.
"""

from __future__ import annotations

import http.client
import json
import platform
import time
from pathlib import Path

import pytest

from benchmarks.bench_config import BENCH_SEED
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data.generator import GeneratorConfig, RecipeDBGenerator
from repro.gateway import ModelGateway
from repro.loadgen import HTTPTarget, build_workload, run_closed_loop
from repro.server import ModelServer
from repro.serving import ModelBundle

MODEL = "logreg"
PINNED_SLEEP = 0.005  # seconds of artificial model service time per pass
BENCH_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_trace.json"

RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def trace_corpus():
    return RecipeDBGenerator(GeneratorConfig(scale=0.006, seed=BENCH_SEED)).generate()


@pytest.fixture(scope="module")
def export_dir(trace_corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("trace-bundles")
    config = ExperimentConfig(
        models=(MODEL,),
        seed=BENCH_SEED,
        statistical_kwargs={MODEL: {"max_iter": 40}},
        export_dir=str(path),
    )
    ExperimentRunner(config, corpus=trace_corpus).run()
    return path


@pytest.fixture(scope="module")
def request_pool(trace_corpus):
    return [recipe.sequence for recipe in trace_corpus.recipes[:40]]


def _pinned_gateway(export_dir, sleep_s: float = PINNED_SLEEP) -> ModelGateway:
    """A gateway whose model pays a fixed per-pass sleep (cache off, so
    every request does the pinned work)."""
    model = ModelBundle.load(export_dir / MODEL).model
    inner = model.predict_proba_tokens

    def pinned(token_lists):
        time.sleep(sleep_s)
        return inner(token_lists)

    model.predict_proba_tokens = pinned
    gateway = ModelGateway(cache_size=0)
    gateway.deploy("cuisine", "v1", model)
    return gateway


def _closed_loop_p50(export_dir, request_pool, *, trace_sample) -> float:
    server = ModelServer(
        _pinned_gateway(export_dir), max_inflight=64, trace_sample=trace_sample
    )
    handle = server.start_in_thread()
    try:
        target = HTTPTarget("127.0.0.1", handle.port, "cuisine")
        warm = build_workload(request_pool, n_requests=40, seed=7)
        run_closed_loop(target, warm, concurrency=2)
        workload = build_workload(
            request_pool, n_requests=160, seed=BENCH_SEED, n_keys=80
        )
        report = run_closed_loop(target, workload, concurrency=4)
        assert report.ok == 160 and report.errors == 0
        return report.latency["p50_ms"]
    finally:
        handle.stop()


@pytest.mark.quick
def test_perf_trace_overhead_at_one_percent_sampling(export_dir, request_pool):
    # A/B/A/B interleaving, best-of-two per config: absorbs one-off CI
    # hiccups while keeping both configs exposed to the same machine state.
    disabled, sampled = [], []
    for _ in range(2):
        disabled.append(_closed_loop_p50(export_dir, request_pool, trace_sample=None))
        sampled.append(_closed_loop_p50(export_dir, request_pool, trace_sample=0.01))
    base_ms, traced_ms = min(disabled), min(sampled)
    overhead_pct = 100.0 * (traced_ms - base_ms) / base_ms
    # The bar from the tracing design: sampled-out requests pay only an id
    # check, so p50 at 1% head sampling stays within 5% of tracing-off.
    assert overhead_pct <= 5.0, (
        f"1%-sampled p50 {traced_ms:.2f}ms vs disabled {base_ms:.2f}ms "
        f"({overhead_pct:+.1f}%) exceeds the 5% overhead budget"
    )
    RESULTS["overhead_1pct_head_sampling"] = {
        "pinned_service_time_ms": 1000.0 * PINNED_SLEEP,
        "p50_ms_disabled": base_ms,
        "p50_ms_sampled_1pct": traced_ms,
        "p50_runs_disabled": disabled,
        "p50_runs_sampled_1pct": sampled,
        "overhead_pct": overhead_pct,
        "budget_pct": 5.0,
    }


@pytest.mark.quick
def test_perf_tail_sampling_captures_slow_and_errors(export_dir, request_pool):
    # Head sampling off entirely; everything kept must come from the tail
    # verdicts. With a 1ms slow threshold against a 5ms pinned model, every
    # OK request is "slow" — all of them must be retrievable.
    server = ModelServer(
        _pinned_gateway(export_dir),
        max_inflight=64,
        trace_sample=0.0,
        trace_slow_ms=1.0,
    )
    handle = server.start_in_thread()
    try:
        target = HTTPTarget("127.0.0.1", handle.port, "cuisine")
        workload = build_workload(request_pool, n_requests=30, seed=BENCH_SEED)
        report = run_closed_loop(target, workload, concurrency=2)
        assert report.ok == 30 and report.errors == 0
        assert len(report.slow_traces) == 5  # ids of the slowest requests

        connection = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
        try:
            connection.request("GET", "/debug/traces")
            stats = json.loads(connection.getresponse().read())["stats"]
            assert stats["kept_slow"] == 30, stats
            assert stats["kept_head"] == 0, stats
            # Every slow id the load report surfaced resolves to a stored
            # trace with the full span chain.
            for entry in report.slow_traces:
                connection.request("GET", f"/debug/traces/{entry['trace_id']}")
                response = connection.getresponse()
                trace = json.loads(response.read())
                assert response.status == 200
                assert trace["slow"] is True
                assert "service.predict" in [s["name"] for s in trace["spans"]]
            # An erroring request is captured too, sample rate regardless.
            connection.request(
                "POST",
                "/routes/missing/predict",
                body=json.dumps({"sequence": ["x"], "key": "oops"}),
            )
            response = connection.getresponse()
            response.read()
            assert response.status == 404
            error_id = dict(
                (k.lower(), v) for k, v in response.getheaders()
            )["x-repro-trace"]
            connection.request("GET", f"/debug/traces/{error_id}")
            response = connection.getresponse()
            trace = json.loads(response.read())
            assert response.status == 200 and trace["error"] is True
        finally:
            connection.close()
        RESULTS["tail_sampling_total_capture"] = {
            "head_sample": 0.0,
            "slow_ms_threshold": 1.0,
            "requests": 30,
            "kept_slow": stats["kept_slow"],
            "error_capture": True,
            "report": report.as_dict(),
        }
    finally:
        handle.stop()


@pytest.mark.quick
def test_emit_bench_trace_artifact():
    artifact = {
        "benchmark": "trace",
        "seed": BENCH_SEED,
        "corpus_scale": 0.006,
        "model": MODEL,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "results": RESULTS,
    }
    BENCH_ARTIFACT.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    assert BENCH_ARTIFACT.exists()
    emitted = json.loads(BENCH_ARTIFACT.read_text())
    assert "overhead_1pct_head_sampling" in emitted["results"]
