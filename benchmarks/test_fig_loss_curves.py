"""Benchmarks F2/F3 — figures ``loss_training`` and ``loss_val``.

The paper plots the per-epoch training and validation loss of the neural
models.  The benchmark regenerates both curves from the training histories
collected during the Table IV run and checks the expected shape: losses are
finite, curves exist for every neural model, and training loss decreases from
the first to the best epoch.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.figures import accuracy_curves, loss_curves
from repro.evaluation.reports import render_ascii_chart


def test_fig_training_loss_curves(benchmark, table_iv_result):
    curves = benchmark(loss_curves, table_iv_result, "train")

    print()
    print(render_ascii_chart(curves, title="Training loss per epoch (figure: loss_training)"))

    # Curves exist exactly for the neural models (statistical models have no epochs).
    assert set(curves) == {"LSTM", "BERT", "RoBERTa"}
    for name, series in curves.items():
        assert len(series) >= 2, f"{name} trained for fewer than 2 epochs"
        assert all(np.isfinite(value) for value in series)
        # Training loss improves over the run.
        assert min(series) < series[0], f"{name} training loss never improved"


def test_fig_validation_loss_curves(benchmark, table_iv_result):
    curves = benchmark(loss_curves, table_iv_result, "val")

    print()
    print(render_ascii_chart(curves, title="Validation loss per epoch (figure: loss_val)"))

    assert set(curves) == {"LSTM", "BERT", "RoBERTa"}
    for name, series in curves.items():
        assert all(np.isfinite(value) for value in series)
        # The best validation loss is not at a degenerate value.
        assert min(series) < series[0] * 1.5


def test_fig_validation_accuracy_curves(benchmark, table_iv_result):
    """Companion accuracy curves: the transformers' validation accuracy improves."""
    curves = benchmark(accuracy_curves, table_iv_result, "val")

    print()
    print(render_ascii_chart(curves, title="Validation accuracy per epoch"))

    for name in ("BERT", "RoBERTa"):
        series = curves[name]
        assert max(series) > series[0], f"{name} validation accuracy never improved"
