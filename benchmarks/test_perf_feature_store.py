"""Feature-store performance benchmarks.

Demonstrates the end-to-end win of the shared-artifact refactor: a
multi-model statistical experiment through one :class:`FeatureStore` runs the
pure-Python preprocessing pipeline once per (corpus, pipeline configuration)
pair, while per-model isolated stores (the pre-refactor behaviour) redo it
for every model.  The head-to-head test asserts both the speedup and that the
metrics are unchanged.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.bench_config import BENCH_SEED
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data.generator import GeneratorConfig, RecipeDBGenerator
from repro.data.splits import train_val_test_split
from repro.models.registry import create_model
from repro.pipeline.specs import TfidfSpec
from repro.pipeline.store import FeatureStore
from repro.text.pipeline import PipelineConfig

#: The four statistical models — they share one preprocessing configuration,
#: which is exactly the redundancy the feature store removes.
SUITE = ("logreg", "naive_bayes", "svm_linear", "random_forest")

#: Light training budgets so the comparison is dominated by the pipeline
#: work being measured, not by classifier convergence.
FAST_KWARGS: dict[str, dict] = {
    "logreg": {"max_iter": 60},
    "svm_linear": {"max_iter": 50},
    "random_forest": {"n_estimators": 8, "max_depth": 10, "boosting_rounds": 4},
}


@pytest.fixture(scope="module")
def perf_corpus():
    return RecipeDBGenerator(GeneratorConfig(scale=0.008, seed=BENCH_SEED)).generate()


def _fit_and_evaluate_suite(splits, label_space, store_factory):
    """Train/evaluate every suite model, resolving artifacts per *store_factory*."""
    accuracies = {}
    for name in SUITE:
        model = create_model(name, label_space=label_space, **FAST_KWARGS.get(name, {}))
        model.fit(splits.train, splits.validation, store=store_factory())
        accuracies[name] = model.evaluate(splits.test).accuracy
    return accuracies


@pytest.mark.quick
def test_perf_shared_store_beats_isolated_preprocessing(perf_corpus):
    splits = train_val_test_split(perf_corpus, seed=BENCH_SEED)
    label_space = perf_corpus.present_cuisines()

    start = time.perf_counter()
    isolated_accuracies = _fit_and_evaluate_suite(splits, label_space, FeatureStore)
    isolated_seconds = time.perf_counter() - start

    shared_store = FeatureStore()
    start = time.perf_counter()
    shared_accuracies = _fit_and_evaluate_suite(splits, label_space, lambda: shared_store)
    shared_seconds = time.perf_counter() - start

    # Seed behaviour reproduced: sharing artifacts must not change a single
    # metric — the artifacts are deterministic, only computed less often.
    assert shared_accuracies == isolated_accuracies

    # The pipeline ran once per split instead of once per model per split.
    assert shared_store.miss_count("tokens") == 3
    assert shared_store.hit_count() > 0

    # And the end-to-end run is measurably faster.
    assert shared_seconds < isolated_seconds


@pytest.mark.quick
def test_perf_experiment_runner_shared_artifacts(benchmark, perf_corpus):
    """Time a full statistical-suite experiment through the shared store."""

    def run():
        config = ExperimentConfig(
            models=SUITE, seed=BENCH_SEED, statistical_kwargs=FAST_KWARGS
        )
        return ExperimentRunner(config, corpus=perf_corpus).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert set(result.model_results) == set(SUITE)


@pytest.mark.quick
def test_perf_warm_store_artifact_lookup(benchmark, perf_corpus):
    """A cache hit must be dictionary-lookup cheap, not pipeline-run expensive."""
    store = FeatureStore()
    spec = TfidfSpec(pipeline=PipelineConfig(split_items=True), min_df=2)
    store.tfidf_matrix(perf_corpus, spec)  # warm

    matrix = benchmark(store.tfidf_matrix, perf_corpus, spec)
    assert matrix.shape[0] == len(perf_corpus)
    assert store.miss_count("tfidf_matrix") == 1
