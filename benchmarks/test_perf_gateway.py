"""Gateway performance benchmarks (CI smoke subset).

Two properties of the deployment gateway's hot path are held here:

* **Shadow traffic is free for the caller** — mirroring every request to a
  deliberately slow candidate must not add blocking latency to the primary
  response path (the mirrors run on the gateway's background executor).
* **Routing overhead is negligible** — a hash-split gateway predict on a
  warmed service costs at most a small constant on top of calling the
  underlying :class:`~repro.serving.PredictionService` directly.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.bench_config import BENCH_SEED
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data.generator import GeneratorConfig, RecipeDBGenerator
from repro.data.splits import train_val_test_split
from repro.gateway import ABSplit, ModelGateway, Shadow
from repro.serving import ModelBundle

MODEL = "logreg"
SHADOW_SLEEP = 0.05  # seconds of artificial slowness per shadow prediction


@pytest.fixture(scope="module")
def gateway_corpus():
    return RecipeDBGenerator(GeneratorConfig(scale=0.006, seed=BENCH_SEED)).generate()


@pytest.fixture(scope="module")
def export_dir(gateway_corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("gateway-bundles")
    config = ExperimentConfig(
        models=(MODEL,),
        seed=BENCH_SEED,
        statistical_kwargs={MODEL: {"max_iter": 40}},
        export_dir=str(path),
    )
    ExperimentRunner(config, corpus=gateway_corpus).run()
    return path


@pytest.fixture(scope="module")
def request_sequences(gateway_corpus):
    splits = train_val_test_split(gateway_corpus, seed=BENCH_SEED)
    return [recipe.sequence for recipe in splits.test][:40]


def _slow_bundle_model(export_dir):
    """The bundled model with an artificial sleep on every prediction."""
    slow = ModelBundle.load(export_dir / MODEL).model
    inner = slow.predict_proba_tokens

    def sleepy(token_lists):
        time.sleep(SHADOW_SLEEP)
        return inner(token_lists)

    slow.predict_proba_tokens = sleepy
    return slow


@pytest.mark.quick
def test_perf_shadow_traffic_adds_no_blocking_latency(export_dir, request_sequences):
    requests = request_sequences[:12]
    with ModelGateway(cache_size=0) as gateway:
        gateway.deploy("cuisine", "v1", export_dir / MODEL)
        gateway.deploy("cuisine", "v2", _slow_bundle_model(export_dir), activate=False)
        gateway.predict("cuisine", requests[0])  # warm featurization + worker

        gateway.set_policy("cuisine", Shadow(candidate="v2"))
        start = time.perf_counter()
        for sequence in requests:
            gateway.predict_proba("cuisine", sequence)
        primary_seconds = time.perf_counter() - start

        # Every request was mirrored to a candidate that sleeps SHADOW_SLEEP
        # per prediction; had the mirrors blocked the callers, the primary
        # path would have taken at least len(requests) * SHADOW_SLEEP.
        blocking_floor = len(requests) * SHADOW_SLEEP
        assert primary_seconds < 0.5 * blocking_floor

        gateway.flush_shadows(timeout=60.0)
        shadow = gateway.registry.metrics("cuisine").snapshot()["shadow"]
        assert shadow["requests"] == len(requests)  # the mirrors really ran
        assert shadow["errors"] == 0


@pytest.mark.quick
def test_perf_hash_split_overhead_negligible(export_dir, request_sequences):
    with ModelGateway() as gateway:
        gateway.deploy("cuisine", "v1", export_dir / MODEL)
        gateway.deploy("cuisine", "v2", export_dir / MODEL, activate=False)
        gateway.set_policy("cuisine", ABSplit(variants={"v1": 0.5, "v2": 0.5}))

        # Warm both paths: after this pass every request is a result-cache
        # hit, so the measurement isolates routing overhead, not model work.
        for sequence in request_sequences:
            gateway.predict_proba("cuisine", sequence)
        direct_names = [
            gateway.service.model_names()[0] for _ in request_sequences
        ]
        for name, sequence in zip(direct_names, request_sequences):
            gateway.service.predict_proba(name, sequence)

        repeats = 10
        start = time.perf_counter()
        for _ in range(repeats):
            for name, sequence in zip(direct_names, request_sequences):
                gateway.service.predict_proba(name, sequence)
        direct_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(repeats):
            for sequence in request_sequences:
                gateway.predict_proba("cuisine", sequence)
        gateway_seconds = time.perf_counter() - start

        n_requests = repeats * len(request_sequences)
        overhead_ms = 1000.0 * (gateway_seconds - direct_seconds) / n_requests
        # Policy hashing + routing + metrics must cost well under a
        # millisecond per request on a cache-hit path.
        assert overhead_ms < 1.0, f"gateway overhead {overhead_ms:.3f} ms/request"
