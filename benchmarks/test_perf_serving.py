"""Serving-layer performance benchmarks.

Head-to-head of the new :class:`~repro.serving.PredictionService` paths on a
warmed service: ``predict_batch`` featurizes and predicts a whole request set
in one model pass, while one-at-a-time ``predict`` pays per-request
featurization, queue hand-off and a single-row model pass each time.  The
benchmark asserts both the throughput win and that the predicted labels are
unchanged.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.bench_config import BENCH_SEED
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data.generator import GeneratorConfig, RecipeDBGenerator
from repro.data.splits import train_val_test_split
from repro.serving import PredictionService

MODEL = "logreg"


@pytest.fixture(scope="module")
def serving_corpus():
    return RecipeDBGenerator(GeneratorConfig(scale=0.008, seed=BENCH_SEED)).generate()


@pytest.fixture(scope="module")
def export_dir(serving_corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving-bundles")
    config = ExperimentConfig(
        models=(MODEL,),
        seed=BENCH_SEED,
        statistical_kwargs={MODEL: {"max_iter": 60}},
        export_dir=str(path),
    )
    ExperimentRunner(config, corpus=serving_corpus).run()
    return path


@pytest.fixture(scope="module")
def request_sequences(serving_corpus):
    splits = train_val_test_split(serving_corpus, seed=BENCH_SEED)
    return [recipe.sequence for recipe in splits.test]


@pytest.mark.quick
def test_perf_batched_predict_beats_sequential(export_dir, request_sequences):
    # The result cache is disabled so both paths do real work per request,
    # and the flush wait is disabled so the sequential path measures
    # per-request featurization/prediction overhead rather than the batching
    # timeout: what is measured is batching, not memoisation or sleeping.
    with PredictionService.from_export_dir(
        export_dir, cache_size=0, flush_interval=0.0
    ) as service:
        service.warm(request_sequences)  # featurization artifacts are hot
        service.predict(MODEL, request_sequences[0])  # worker thread is up

        start = time.perf_counter()
        sequential = [service.predict(MODEL, sequence) for sequence in request_sequences]
        sequential_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batched = service.predict_batch(MODEL, request_sequences)
        batched_seconds = time.perf_counter() - start

        # Same inputs, same model, same labels — batching must not change
        # a single prediction.
        assert batched == sequential

        # And one batched pass beats N single passes on a warmed service.
        assert batched_seconds < sequential_seconds
        stats = service.stats()
        assert stats["requests"] == 2 * len(request_sequences) + 1


@pytest.mark.quick
def test_perf_result_cache_short_circuits_repeats(export_dir, request_sequences):
    with PredictionService.from_export_dir(export_dir) as service:
        service.predict_batch(MODEL, request_sequences)  # populate the cache

        start = time.perf_counter()
        service.predict_batch(MODEL, request_sequences)
        cached_seconds = time.perf_counter() - start

        stats = service.stats()
        assert stats["cache_hits"] == len(request_sequences)
        # A fully cached batch is dictionary-lookup cheap.
        assert cached_seconds < 0.5
