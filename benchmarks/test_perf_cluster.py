"""Cluster scale-out performance benchmarks (CI smoke subset).

Two load-bearing properties of the multi-process tier are held here:

* **Preforking multiplies throughput** — with per-worker capacity pinned
  by a synthetic service time (``--service-time``, so the result does not
  depend on how many cores the CI machine has), a four-worker fleet must
  sustain at least 2.5x the throughput of a single worker on the same
  port.  The result cache is off and micro-batching is disabled
  (``max_batch_size=1``) so every request really costs one service-time
  pass.
* **Memory-mapped bundles are shared, and bitwise-identical** — N
  processes mapping one extracted bundle keep one physical copy of the
  arrays (measured as proportional-set-size via ``/proc/.../smaps_rollup``
  with all processes resident simultaneously), while full-copy loading
  pays the arrays per process; and both modes read the exact same bytes.

The final test writes ``BENCH_cluster.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from benchmarks.bench_config import BENCH_SEED
from repro.cluster import ClusterSupervisor
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.data.generator import GeneratorConfig, RecipeDBGenerator
from repro.loadgen import HTTPTarget, build_workload, run_closed_loop
from repro.models.artifacts import extract_archive, write_bundle

MODEL = "logreg"
#: Synthetic per-pass service time pinning each worker's capacity (~50 rps).
SERVICE_TIME = 0.02
FLEET = 4
BENCH_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

#: Reports accumulated by the tests and emitted as BENCH_cluster.json.
RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def cluster_corpus():
    return RecipeDBGenerator(GeneratorConfig(scale=0.006, seed=BENCH_SEED)).generate()


@pytest.fixture(scope="module")
def export_dir(cluster_corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster-bundles")
    config = ExperimentConfig(
        models=(MODEL,),
        seed=BENCH_SEED,
        statistical_kwargs={MODEL: {"max_iter": 40}},
        export_dir=str(path),
    )
    ExperimentRunner(config, corpus=cluster_corpus).run()
    return path


@pytest.fixture(scope="module")
def request_pool(cluster_corpus):
    return [recipe.sequence for recipe in cluster_corpus.recipes[:40]]


def _fleet_report(export_dir, request_pool, workers, n_requests, workdir):
    """Closed-loop throughput of a *workers*-wide fleet, service-time pinned."""
    supervisor = ClusterSupervisor(
        workers=workers,
        export_dir=export_dir,
        route="cuisine",
        service_time=SERVICE_TIME,
        cache_size=0,  # every request pays a real (pinned) model pass
        max_batch_size=1,  # no micro-batching: capacity is 1/SERVICE_TIME each
        drain_timeout=10.0,
        workdir=workdir,
    )
    handle = supervisor.start_in_thread()
    try:
        target = HTTPTarget(handle.host, handle.port, "cuisine")
        warm = build_workload(request_pool, n_requests=24, seed=1)
        run_closed_loop(target, warm, concurrency=8)
        workload = build_workload(
            request_pool,
            n_requests=n_requests,
            seed=BENCH_SEED,
            key_distribution="uniform",
            n_keys=100,
        )
        report = run_closed_loop(
            HTTPTarget(handle.host, handle.port, "cuisine"),
            workload,
            concurrency=24,
        )
    finally:
        handle.stop()
    return supervisor.mode, report


@pytest.mark.quick
def test_perf_fleet_throughput_scales(export_dir, request_pool, tmp_path_factory):
    mode, single = _fleet_report(
        export_dir, request_pool, 1, 120, tmp_path_factory.mktemp("fleet-1")
    )
    _, quad = _fleet_report(
        export_dir, request_pool, FLEET, 360, tmp_path_factory.mktemp("fleet-4")
    )

    assert single.errors == 0 and quad.errors == 0
    assert single.shed == 0 and quad.shed == 0
    speedup = quad.throughput_rps / single.throughput_rps
    # Capacity is pinned at 1/SERVICE_TIME per worker, so the fleet must
    # scale close to linearly regardless of host core count.
    assert speedup >= 2.5, (
        f"{FLEET}-worker fleet only reached {speedup:.2f}x of one worker "
        f"({quad.throughput_rps:.0f} vs {single.throughput_rps:.0f} rps, {mode} mode)"
    )
    RESULTS["fleet_throughput_scaling"] = {
        "mode": mode,
        "service_time_ms": 1000.0 * SERVICE_TIME,
        "workers": FLEET,
        "single_worker": single.as_dict(),
        "fleet": quad.as_dict(),
        "speedup": speedup,
    }


# ----------------------------------------------------------------------
# shared-memory bundles
# ----------------------------------------------------------------------

#: Synthetic bundle arrays: big enough that per-process copies dominate
#: interpreter noise in the PSS accounting.
ARRAY_SHAPE = (2_000_000,)
ARRAY_COUNT = 3
ARRAY_BYTES = ARRAY_COUNT * ARRAY_SHAPE[0] * 8

_CHILD_SCRIPT = textwrap.dedent(
    """
    import json
    import sys

    import numpy as np

    from repro.models.artifacts import read_bundle


    def pss_kb() -> int:
        with open("/proc/self/smaps_rollup", encoding="ascii") as stream:
            for line in stream:
                if line.startswith("Pss:"):
                    return int(line.split()[1])
        raise RuntimeError("no Pss line in smaps_rollup")


    def leaves(node):
        if isinstance(node, np.ndarray):
            yield node
        elif isinstance(node, dict):
            for value in node.values():
                yield from leaves(value)
        elif isinstance(node, (list, tuple)):
            for value in node:
                yield from leaves(value)


    path, mode = sys.argv[1], sys.argv[2]
    _, state = read_bundle(path, mmap=(mode == "mmap"))
    checksum = 0.0
    for array in leaves(state):
        checksum += float(array.sum())  # fault every page in
    print(json.dumps({"ready": True, "checksum": checksum}), flush=True)
    sys.stdin.readline()  # all siblings resident: now the PSS split is real
    print(json.dumps({"pss_kb": pss_kb()}), flush=True)
    """
)


def _measure_fleet_pss(bundle: Path, script: Path, mode: str, processes: int):
    """Mean per-process PSS of *processes* concurrent bundle loaders."""
    import repro

    env = os.environ.copy()
    src_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    children = [
        subprocess.Popen(
            [sys.executable, str(script), str(bundle), mode],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        for _ in range(processes)
    ]
    try:
        checksums = [json.loads(child.stdout.readline())["checksum"] for child in children]
        for child in children:  # every loader is resident: sample the split
            child.stdin.write("go\n")
            child.stdin.flush()
        pss = [json.loads(child.stdout.readline())["pss_kb"] for child in children]
    finally:
        for child in children:
            child.stdin.close()
            child.wait(30)
    assert len(set(checksums)) == 1, "loaders disagreed on array content"
    return sum(pss) / len(pss), checksums[0]


@pytest.mark.quick
@pytest.mark.skipif(
    not Path("/proc/self/smaps_rollup").exists(),
    reason="PSS accounting needs /proc smaps_rollup (Linux)",
)
def test_perf_mmap_bundles_share_memory(tmp_path):
    rng = np.random.default_rng(BENCH_SEED)
    state = {
        f"weights_{index}": rng.standard_normal(ARRAY_SHAPE)
        for index in range(ARRAY_COUNT)
    }
    bundle = write_bundle(tmp_path / "big-bundle", {"model": "synthetic"}, state)
    # Extract once up front — the steady state every worker after the first
    # cold-start sees.  Concurrent cold extractors land byte-identical files
    # but may map different (atomically-replaced) inodes, which would defeat
    # the page-sharing this benchmark measures.
    manifest = json.loads((bundle / "manifest.json").read_text(encoding="utf-8"))
    extract_archive(bundle, manifest["arrays"])
    script = tmp_path / "load_and_report.py"
    script.write_text(_CHILD_SCRIPT, encoding="utf-8")

    copy_pss, copy_checksum = _measure_fleet_pss(bundle, script, "copy", FLEET)
    mmap_pss, mmap_checksum = _measure_fleet_pss(bundle, script, "mmap", FLEET)

    # Bitwise: both loading modes read the exact same array bytes.
    assert mmap_checksum == copy_checksum

    saved_bytes = (copy_pss - mmap_pss) * 1024
    # Full-copy loaders each pay the arrays privately; mmap loaders split
    # one resident copy FLEET ways.  Demand a conservative margin of the
    # ideal (1 - 1/FLEET) saving to stay robust against interpreter noise.
    assert saved_bytes > 0.4 * ARRAY_BYTES, (
        f"mmap loaders saved only {saved_bytes / 2**20:.1f} MiB per process "
        f"of {ARRAY_BYTES / 2**20:.1f} MiB of arrays "
        f"(copy {copy_pss:.0f} KiB vs mmap {mmap_pss:.0f} KiB)"
    )
    RESULTS["mmap_shared_memory"] = {
        "processes": FLEET,
        "array_bytes": ARRAY_BYTES,
        "copy_mean_pss_kb": copy_pss,
        "mmap_mean_pss_kb": mmap_pss,
        "saved_bytes_per_process": saved_bytes,
        "bitwise_identical": mmap_checksum == copy_checksum,
    }


@pytest.mark.quick
def test_emit_bench_cluster_artifact():
    """Write BENCH_cluster.json — the scale-out perf trajectory artifact."""
    artifact = {
        "benchmark": "cluster",
        "seed": BENCH_SEED,
        "corpus_scale": 0.006,
        "model": MODEL,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "results": RESULTS,
    }
    BENCH_ARTIFACT.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    assert BENCH_ARTIFACT.exists()
    emitted = json.loads(BENCH_ARTIFACT.read_text())
    assert "fleet_throughput_scaling" in emitted["results"]
