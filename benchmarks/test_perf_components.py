"""Component micro-benchmarks.

These time the individual substrate operations the experiments are built from
(corpus generation, preprocessing, TF-IDF vectorization, classical training,
neural forward/backward passes), so a regression in any layer is visible
without re-running the full Table IV experiment.
"""

from __future__ import annotations

import re
import time

import numpy as np
import pytest

from benchmarks.bench_config import BENCH_SEED
from repro.data.generator import GeneratorConfig, RecipeDBGenerator
from repro.features.tfidf import TfidfVectorizer
from repro.ml.logistic_regression import LogisticRegressionClassifier
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.nn.losses import cross_entropy_logits
from repro.nn.optim import AdamW
from repro.nn.transformer import TransformerConfig, TransformerForSequenceClassification
from repro.text.pipeline import default_statistical_pipeline


@pytest.mark.quick
def test_perf_cleaning_tokenizer_regexes_precompiled(benchmark):
    """The cleaning/tokenizer regexes must stay compiled at module import.

    The stage chain runs these patterns once (or more) per recipe item over
    the whole corpus; falling back to per-call ``re`` work in a refactor
    would silently tax every preprocessing pass.  The identity assertions
    pin the module-level compiled objects; the throughput assertion keeps a
    generous per-item ceiling that per-call compilation overhead would blow.
    """
    from repro.text import cleaning, tokenizer
    from repro.text.cleaning import clean_item
    from repro.text.tokenizer import tokenize

    assert isinstance(cleaning._NON_WORD, re.Pattern)
    assert isinstance(cleaning._MULTI_SPACE, re.Pattern)
    assert isinstance(tokenizer._TOKEN, re.Pattern)

    items = [
        "2 chopped Onions!", "red lentils", "olive oil (extra-virgin)",
        "Stir-fry the GARLIC", "don't overmix", "simmering tomatoes",
    ] * 300

    def process_all():
        return [tokenize(clean_item(item)) for item in items]

    tokens = benchmark(process_all)
    assert len(tokens) == len(items)
    timings = []
    for _ in range(3):
        start = time.perf_counter()
        process_all()
        timings.append(time.perf_counter() - start)
    per_item = min(timings) / len(items)
    assert per_item < 50e-6, (
        f"cleaning+tokenization averaged {per_item * 1e6:.1f}us per item"
    )


def test_perf_corpus_generation(benchmark):
    def generate():
        return RecipeDBGenerator(GeneratorConfig(scale=0.005, seed=BENCH_SEED)).generate()

    corpus = benchmark(generate)
    assert len(corpus) > 200


def test_perf_preprocessing_pipeline(benchmark, bench_corpus):
    pipeline = default_statistical_pipeline()
    subset = bench_corpus.subset(range(min(500, len(bench_corpus))))
    documents = benchmark(pipeline.documents, subset)
    assert len(documents) == len(subset)


def test_perf_tfidf_vectorization(benchmark, bench_corpus):
    pipeline = default_statistical_pipeline()
    documents = pipeline.documents(bench_corpus.subset(range(min(1000, len(bench_corpus)))))

    def vectorize():
        return TfidfVectorizer(min_df=2).fit_transform(documents)

    matrix = benchmark(vectorize)
    assert matrix.shape[0] == len(documents)


def test_perf_naive_bayes_training(benchmark, bench_corpus):
    pipeline = default_statistical_pipeline()
    documents = pipeline.documents(bench_corpus)
    features = TfidfVectorizer(min_df=2).fit_transform(documents)
    labels = np.asarray(bench_corpus.labels(bench_corpus.present_cuisines()))

    def train():
        return MultinomialNaiveBayes(alpha=0.3).fit(features, labels)

    model = benchmark(train)
    assert model.score(features, labels) > 0.3


def test_perf_logistic_regression_epoch(benchmark, bench_corpus):
    pipeline = default_statistical_pipeline()
    documents = pipeline.documents(bench_corpus.subset(range(min(1000, len(bench_corpus)))))
    features = TfidfVectorizer(min_df=2).fit_transform(documents)
    labels = np.asarray(
        bench_corpus.subset(range(min(1000, len(bench_corpus)))).labels(
            bench_corpus.present_cuisines()
        )
    )

    def train_short():
        return LogisticRegressionClassifier(
            multi_class="multinomial", max_iter=25, C=50.0
        ).fit(features, labels)

    model = benchmark(train_short)
    assert hasattr(model, "coef_")


def test_perf_transformer_forward_backward(benchmark):
    config = TransformerConfig(
        vocab_size=2000, max_length=48, dim=64, num_heads=4, num_layers=2, ffn_dim=128, seed=0
    )
    model = TransformerForSequenceClassification(config, num_classes=26)
    optimizer = AdamW(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(0)
    ids = rng.integers(4, 2000, size=(32, 48))
    mask = np.ones((32, 48))
    labels = rng.integers(0, 26, size=32)

    def step():
        model.zero_grad()
        logits = model(ids, mask=mask)
        loss = cross_entropy_logits(logits, labels)
        loss.backward()
        optimizer.step()
        return loss.item()

    loss = benchmark(step)
    assert np.isfinite(loss)


def test_perf_transformer_inference(benchmark):
    config = TransformerConfig(
        vocab_size=2000, max_length=48, dim=64, num_heads=4, num_layers=2, ffn_dim=128, seed=0
    )
    model = TransformerForSequenceClassification(config, num_classes=26)
    model.eval()
    rng = np.random.default_rng(1)
    ids = rng.integers(4, 2000, size=(64, 48))
    mask = np.ones((64, 48))

    from repro.nn.tensor import no_grad

    def infer():
        with no_grad():
            return model(ids, mask=mask).data

    logits = benchmark(infer)
    assert logits.shape == (64, 26)
    assert np.isfinite(logits).all()
