"""Benchmark E1 — Table I: sample rows of the RecipeDB corpus.

Regenerates the paper's Table I (one sample recipe per continent, shown as a
sequence of ingredients, processes and utensils) from the benchmark corpus and
prints it in the paper's layout.
"""

from __future__ import annotations

from repro.evaluation.reports import format_table
from repro.evaluation.tables import table_i


def test_table1_sample_dataset(benchmark, bench_corpus):
    rows = benchmark(table_i, bench_corpus)

    print()
    print(format_table(rows, title="TABLE I - SAMPLE DATASET FROM RECIPEDB (synthetic)"))

    # Shape assertions: the paper's Table I spans six continents and every row
    # is a sequentially structured recipe.
    assert len(rows) >= 5
    continents = {row["Continent"] for row in rows}
    assert {"Asian", "European", "North American", "Latin American", "African"} <= continents
    for row in rows:
        assert set(row) == {"Recipe ID", "Continent", "Cuisine", "Recipe"}
        assert len(row["Recipe"]) >= 3


def test_table1_sequences_follow_ingredient_process_utensil_order(benchmark, bench_corpus):
    """Table I recipes list ingredients first, then processes, then utensils."""

    def sample_structure():
        from repro.data.schema import TokenKind

        order = [TokenKind.INGREDIENT, TokenKind.PROCESS, TokenKind.UTENSIL]
        checked = 0
        for recipe in bench_corpus:
            kinds = list(recipe.kinds)
            if kinds != sorted(kinds, key=order.index):
                return False
            checked += 1
            if checked >= 200:
                break
        return True

    assert benchmark(sample_structure)
