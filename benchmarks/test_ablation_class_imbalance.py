"""Benchmark A2 — ablation: class imbalance (paper §VII).

The paper notes that "the imbalance among the classes affects the cuisine
prediction accuracy of the classifiers. This can be reduced by ignoring the
low frequency classes but would lead to a limited exploration of the world
cuisines."  This ablation quantifies that trade-off: the same model is trained
on the full 26-cuisine corpus and on a corpus restricted to the frequent
cuisines, and the accuracy/coverage trade-off is reported.
"""

from __future__ import annotations

import numpy as np

from benchmarks.bench_config import BENCH_SEED, STATISTICAL_KWARGS
from repro.core.experiment import ExperimentConfig, ExperimentRunner


def test_ablation_class_imbalance(benchmark, bench_corpus):
    def run_ablation():
        results = {}
        for label, min_recipes in (("all 26 cuisines", 0), ("frequent cuisines only", 60)):
            config = ExperimentConfig(
                models=("logreg",),
                seed=BENCH_SEED,
                min_cuisine_recipes=min_recipes,
                statistical_kwargs=STATISTICAL_KWARGS,
            )
            result = ExperimentRunner(config, corpus=bench_corpus).run()
            model_result = result.model_results["logreg"]
            results[label] = {
                "n_classes": result.config["n_classes"],
                "accuracy": model_result.metrics.accuracy,
                "macro_f1": model_result.metrics.f1,
            }
        return results

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print()
    for label, values in results.items():
        print(
            f"  {label:<24} classes={values['n_classes']:2d}  "
            f"accuracy={values['accuracy']:.3f}  macro_f1={values['macro_f1']:.3f}"
        )

    full = results["all 26 cuisines"]
    restricted = results["frequent cuisines only"]

    # Restricting to frequent cuisines reduces coverage of the world's cuisines...
    assert restricted["n_classes"] < full["n_classes"]
    assert full["n_classes"] == 26
    # ...but does not hurt (and typically improves) raw accuracy — the paper's
    # stated trade-off.
    assert restricted["accuracy"] >= full["accuracy"] - 0.02
    # Per-class recall imbalance exists in the full problem: macro-F1 trails accuracy.
    assert full["macro_f1"] <= full["accuracy"] + 0.05
    assert np.isfinite(full["macro_f1"]) and np.isfinite(restricted["macro_f1"])
