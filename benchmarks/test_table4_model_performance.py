"""Benchmark E4 — Table IV: performance metrics of all seven models.

Trains every model of the paper's Table IV (Logistic Regression, Naive Bayes,
linear SVM, Random Forest+AdaBoost, 2-layer LSTM, BERT- and RoBERTa-style
transformers) on the benchmark corpus with the paper's 7:1:2 split and prints
the regenerated table next to the paper's reported values.

Absolute accuracies differ from the paper (the substrate is a synthetic,
scaled-down corpus and the transformers are pretrained only on in-domain
recipe text), so the assertions target the paper's qualitative findings:

* every model clearly beats the 26-class chance level;
* the pretrained bidirectional transformers are the best models overall;
* RoBERTa-style pretraining (dynamic masking, more steps) is at least as good
  as BERT-style pretraining;
* the statistical TF-IDF models form the mid-field, with the plain LSTM not
  ahead of the best statistical model (in the paper the LSTM trails Logistic
  Regression).
"""

from __future__ import annotations

from repro.evaluation.reports import format_table
from repro.evaluation.tables import table_iv
from repro.models.registry import PAPER_TABLE_IV


def test_table4_performance_metrics(benchmark, table_iv_result):
    rows = benchmark(table_iv, table_iv_result)

    print()
    print(format_table(rows, title="TABLE IV - PERFORMANCE METRICS OF APPLIED MODELS"))
    print()
    print(format_table(
        [
            {"Model": name, **values}
            for name, values in PAPER_TABLE_IV.items()
        ],
        title="(paper-reported values, full RecipeDB)",
    ))

    accuracy = {
        name: result.metrics.accuracy
        for name, result in table_iv_result.model_results.items()
    }
    n_classes = table_iv_result.config["n_classes"]
    chance = 1.0 / n_classes

    # Every model clearly beats chance on the 26-way problem.
    for name, value in accuracy.items():
        assert value > 3 * chance, f"{name} did not beat chance: {value:.3f}"

    # Transformers sit at (or within a few points of) the top of the table.
    # On the full RecipeDB the paper reports a ~15-point transformer lead; on
    # the ~50x smaller synthetic corpus the data-hungry transformers lose most
    # of that margin (see EXPERIMENTS.md E4), so the asserted shape is that
    # the RoBERTa-style model is competitive with the best statistical model
    # and the transformers are not dominated by the rest of the field.
    best_statistical = max(
        accuracy[name] for name in ("logreg", "naive_bayes", "svm_linear", "random_forest")
    )
    assert accuracy["roberta"] > best_statistical - 0.06, (
        f"RoBERTa ({accuracy['roberta']:.3f}) fell too far below the best statistical "
        f"model ({best_statistical:.3f})"
    )
    ranking = sorted(accuracy, key=accuracy.get, reverse=True)
    assert ranking[0] in ("roberta", "bert", "svm_linear")
    assert "roberta" in ranking[:3]

    # RoBERTa-style pretraining >= BERT-style pretraining (73.30 vs 68.71 in the paper).
    assert accuracy["roberta"] >= accuracy["bert"] - 0.02

    # The simple LSTM does not lead the table (it trails LogReg in the paper).
    assert accuracy["lstm"] <= best_statistical + 0.02

    # All five Table IV metrics are reported for every model.
    for row in rows:
        assert {"Accuracy", "Loss", "Precision", "Recall", "F1 Score"} <= set(row)


def test_table4_loss_ordering(benchmark, table_iv_result):
    """The paper's loss column: transformers reach the lowest test loss."""
    losses = benchmark(
        lambda: {
            name: result.metrics.loss
            for name, result in table_iv_result.model_results.items()
        }
    )
    print()
    for name, value in sorted(losses.items(), key=lambda kv: kv[1]):
        print(f"  {name:<14} loss={value:.3f}")
    statistical = ("logreg", "naive_bayes", "svm_linear", "random_forest")
    assert losses["roberta"] < max(losses[name] for name in statistical)


def test_table4_training_times_reported(benchmark, table_iv_result):
    """Training wall-clock is recorded for every model (reproducibility metadata)."""
    times = benchmark(
        lambda: {
            name: result.train_seconds
            for name, result in table_iv_result.model_results.items()
        }
    )
    print()
    for name, seconds in times.items():
        print(f"  {name:<14} {seconds:7.1f}s")
    assert all(seconds > 0 for seconds in times.values())
