"""Shared configuration of the benchmark harness.

All benchmarks run against one synthetic RecipeDB corpus and one Table IV
experiment, computed once per pytest session (see ``conftest.py``).  The knobs
below control the corpus scale and the neural training budget; they can be
overridden through environment variables so the full-scale reproduction can be
run on a bigger machine without editing code:

* ``REPRO_BENCH_SCALE``            — corpus scale (default 0.02 ≈ 2.4k recipes)
* ``REPRO_BENCH_SEED``             — corpus / split / model seed
* ``REPRO_BENCH_EPOCHS``           — neural fine-tuning epochs
* ``REPRO_BENCH_PRETRAIN_EPOCHS``  — transformer MLM pretraining epochs
  (the BERT preset halves this, the RoBERTa preset doubles it)
"""

from __future__ import annotations

import os

from repro.models.lstm_classifier import LSTMClassifierConfig
from repro.models.transformer_classifier import TransformerClassifierConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "14"))
BENCH_PRETRAIN_EPOCHS = int(os.environ.get("REPRO_BENCH_PRETRAIN_EPOCHS", "2"))

#: Constructor overrides for the statistical models (tuned so that each model
#: is trained to convergence on the benchmark corpus rather than underfit).
STATISTICAL_KWARGS: dict[str, dict] = {
    "logreg": {"C": 50.0, "max_iter": 800, "multi_class": "multinomial"},
    "naive_bayes": {"alpha": 0.3},
    "svm_linear": {"C": 1.0, "max_iter": 400},
    "random_forest": {"n_estimators": 40, "max_depth": 20, "boosting_rounds": 10},
}


def lstm_config() -> LSTMClassifierConfig:
    """LSTM configuration used by every benchmark."""
    return LSTMClassifierConfig(
        epochs=max(4, BENCH_EPOCHS // 2),
        seed=BENCH_SEED,
    )


def transformer_config() -> TransformerClassifierConfig:
    """Transformer configuration used by every benchmark."""
    return TransformerClassifierConfig(
        epochs=BENCH_EPOCHS,
        pretrain_epochs=BENCH_PRETRAIN_EPOCHS,
        learning_rate=2e-3,
        early_stopping_patience=4,
        seed=BENCH_SEED,
    )
