"""Benchmark F4 — feature-frequency figures (``feat`` / ``feature`` / ``fig1``).

The paper's dataset figures show the frequency distribution of recipe features
(ingredients, processes, utensils).  The benchmark regenerates the top-feature
rankings and log-spaced frequency histograms per substructure and checks the
long-tail shape: ``add`` dominates the processes, a handful of staple
ingredients dominate the ingredient distribution, and most features live in
the lowest-frequency bins.
"""

from __future__ import annotations

from repro.data.schema import TokenKind
from repro.evaluation.figures import feature_frequency_histogram
from repro.evaluation.reports import render_ascii_chart


def test_fig_feature_frequency_all(benchmark, bench_corpus):
    figure = benchmark(feature_frequency_histogram, bench_corpus)

    top = {entry["feature"]: entry["count"] for entry in figure["top_features"][:10]}
    print()
    print(render_ascii_chart(top, title="Most frequent features (all substructures)"))

    # "add" is the single most frequent feature, as the paper reports.
    assert figure["top_features"][0]["feature"] == "add"
    # The histogram covers the whole vocabulary.
    assert sum(entry["features"] for entry in figure["histogram"]) == figure["total_features"]
    # Long tail: the lowest-frequency bins hold the majority of features.
    low_bins = figure["histogram"][:3]
    assert sum(entry["features"] for entry in low_bins) > 0.4 * figure["total_features"]


def test_fig_feature_frequency_per_substructure(benchmark, bench_corpus):
    def per_substructure():
        return {
            kind: feature_frequency_histogram(bench_corpus, kind=kind)
            for kind in (TokenKind.INGREDIENT, TokenKind.PROCESS, TokenKind.UTENSIL)
        }

    figures = benchmark(per_substructure)

    for kind, figure in figures.items():
        top = {entry["feature"]: entry["count"] for entry in figure["top_features"][:6]}
        print()
        print(render_ascii_chart(top, title=f"Most frequent {kind.value}s"))

    # Substructure vocabulary sizes follow the paper's relative sizes:
    # ingredients >> processes > utensils (20,280 vs 256 vs 69 at full scale).
    n_ingredients = figures[TokenKind.INGREDIENT]["total_features"]
    n_processes = figures[TokenKind.PROCESS]["total_features"]
    n_utensils = figures[TokenKind.UTENSIL]["total_features"]
    assert n_ingredients > n_processes > n_utensils
    assert n_processes <= 256
    assert n_utensils <= 69
    # The dominant process is "add".
    assert figures[TokenKind.PROCESS]["top_features"][0]["feature"] == "add"
