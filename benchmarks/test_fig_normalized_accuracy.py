"""Benchmark F1 — figure ``Normalized_Model_Accuracy``.

The paper normalises each model's accuracy by the best model's accuracy.  The
benchmark regenerates both the measured series and the paper's series and
checks that the best model gets 1.0 and that the transformers sit at the top
of the normalized ranking, as in the figure.
"""

from __future__ import annotations

import pytest

from repro.evaluation.figures import normalized_accuracy
from repro.evaluation.reports import render_ascii_chart


def test_fig_normalized_model_accuracy(benchmark, table_iv_result):
    series = benchmark(normalized_accuracy, table_iv_result)

    print()
    print(render_ascii_chart(series["measured"], title="Normalized model accuracy (measured)"))
    print()
    print(render_ascii_chart(series["paper"], title="Normalized model accuracy (paper)"))

    measured = series["measured"]
    paper = series["paper"]

    # Both series are normalised to the best model.
    assert max(measured.values()) == pytest.approx(1.0)
    assert max(paper.values()) == pytest.approx(1.0)
    assert all(0.0 < value <= 1.0 for value in measured.values())

    # In the paper, RoBERTa is the normaliser (1.0); in our run the top of the
    # chart is a transformer or the strongest linear baseline (see
    # EXPERIMENTS.md E4 for why the margin shrinks at small corpus scale).
    assert paper["RoBERTa"] == pytest.approx(1.0)
    best_measured = max(measured, key=measured.get)
    assert best_measured in ("RoBERTa", "BERT", "SVM (linear)")
    assert measured["RoBERTa"] > 0.85

    # Every model reaches a substantial fraction of the best model, as in the
    # figure (the paper's lowest normalized value is RF at ~0.69).
    assert min(measured.values()) > 0.3
