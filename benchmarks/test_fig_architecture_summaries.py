"""Benchmark F5 — architecture/flow figures (``flow`` / ``lstm`` / ``final_edit``).

The paper's remaining figures are architecture diagrams (the preprocessing /
classification flow and the LSTM cell).  They carry no measured data, so the
reproduction renders them as textual architecture summaries; the benchmark
checks that a summary exists for every Table IV model and that it names the
components the paper describes.
"""

from __future__ import annotations

from repro.models.registry import MODEL_NAMES, describe_architecture


def test_fig_architecture_summaries(benchmark):
    summaries = benchmark(lambda: {name: describe_architecture(name) for name in MODEL_NAMES})

    print()
    for name, summary in summaries.items():
        print(f"  {name:<14} {summary}")

    assert set(summaries) == set(MODEL_NAMES)
    # The flow the paper describes: preprocessing -> TF-IDF for statistical models.
    for name in ("logreg", "naive_bayes", "svm_linear", "random_forest"):
        assert "TF-IDF" in summaries[name]
        assert "lemmatize" in summaries[name]
    # The LSTM figure: gated 2-layer recurrent network over the item sequence.
    assert "2-layer LSTM" in summaries["lstm"]
    assert "forget" in summaries["lstm"]
    # The transformer flow: bidirectional encoder with MLM pretraining and [CLS] head.
    for name in ("bert", "roberta"):
        assert "bidirectional Transformer" in summaries[name]
        assert "MLM" in summaries[name]
        assert "[CLS]" in summaries[name]
    # The BERT/RoBERTa difference the paper cites is visible in the summaries.
    assert "static" in summaries["bert"] and "dynamic" in summaries["roberta"]
