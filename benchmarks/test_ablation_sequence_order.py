"""Benchmark A1 — ablation: does sequence order carry cuisine signal?

The paper's conclusions call out the unexplored contribution of the *order* of
recipe items.  This ablation isolates it with two Naive Bayes models built
from the same item-level tokens:

* a **unigram (bag-of-items)** model, which is order-blind by construction;
* a **bigram (adjacent ordered pair)** model, whose features exist only by
  virtue of the item order.

Both are trained on the original corpus and on a corpus whose recipe sequences
were randomly shuffled (identical bags of items, order destroyed).  The
expected shape: the unigram model is unaffected by shuffling, while the bigram
model's accuracy drops substantially — i.e. the corpus carries genuine
order signal that bag-of-words models cannot see, which is the paper's core
hypothesis.  (The transformer version of this ablation is in
``examples/sequence_order_ablation.py``; it is kept out of the benchmark suite
to bound runtime.)
"""

from __future__ import annotations

import numpy as np

from benchmarks.bench_config import BENCH_SEED
from repro.core.experiment import shuffle_recipe_sequences
from repro.data.splits import train_val_test_split
from repro.features.counts import CountVectorizer
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.text.pipeline import default_sequential_pipeline


def _naive_bayes_accuracy(train, test, ngram_range: tuple[int, int]) -> float:
    """Accuracy of Naive Bayes over item-level n-gram count features."""
    pipeline = default_sequential_pipeline()
    vectorizer = CountVectorizer(ngram_range=ngram_range, min_df=2)
    train_features = vectorizer.fit_transform(pipeline.documents(train))
    test_features = vectorizer.transform(pipeline.documents(test))
    label_space = train.present_cuisines()
    train_labels = np.asarray(train.labels(label_space))
    test_labels = np.asarray(test.labels(label_space))
    model = MultinomialNaiveBayes(alpha=0.3).fit(train_features, train_labels)
    return model.score(test_features, test_labels)


def test_ablation_sequence_order(benchmark, bench_corpus):
    shuffled_corpus = shuffle_recipe_sequences(bench_corpus, seed=BENCH_SEED)

    def run_ablation():
        results = {}
        for label, corpus in (("ordered", bench_corpus), ("shuffled", shuffled_corpus)):
            splits = train_val_test_split(corpus, seed=BENCH_SEED)
            results[label] = {
                "unigram_accuracy": _naive_bayes_accuracy(
                    splits.train, splits.test, ngram_range=(1, 1)
                ),
                "bigram_accuracy": _naive_bayes_accuracy(
                    splits.train, splits.test, ngram_range=(1, 2)
                ),
            }
        return results

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print()
    for label, values in results.items():
        print(
            f"  {label:<9} unigram NB accuracy={values['unigram_accuracy']:.3f}  "
            f"unigram+bigram NB accuracy={values['bigram_accuracy']:.3f}"
        )

    ordered = results["ordered"]
    shuffled = results["shuffled"]

    # The bag-of-items model is essentially unaffected by shuffling (order-blind).
    assert abs(ordered["unigram_accuracy"] - shuffled["unigram_accuracy"]) < 0.05
    # Adding ordered-pair features helps on the ordered corpus...
    assert ordered["bigram_accuracy"] > ordered["unigram_accuracy"] + 0.02
    # ...and that advantage shrinks when the order is destroyed.
    ordered_gain = ordered["bigram_accuracy"] - ordered["unigram_accuracy"]
    shuffled_gain = shuffled["bigram_accuracy"] - shuffled["unigram_accuracy"]
    assert ordered_gain > shuffled_gain + 0.03
